// Mapped zero-copy read path for binary columnar logs. The streaming scanner
// in binary.go pays a bufio copy plus a fresh decode pass per block on one
// goroutine; at 10⁷–10⁸ rows a resume replay or cache hit spends most of its
// time in read(2) and allocator zeroing. This file decodes column slices
// directly out of a syscall.Mmap view of the file instead: a serial frame
// walk validates structure and dictionary blocks (whose strings are copied
// out of the mapping, so decoded rows never alias it), then the independent
// data blocks are checksum-verified and decoded by a bounded worker pool —
// each block lands in a disjoint window of the destination slab, so there is
// no merge step and steady-state replay allocates nothing.
//
// The torn/corruption classification is bit-for-bit the streaming scanner's:
// the lowest-offset failing block decides the outcome, torn if it is the
// file's final block, hard corruption otherwise, with identical error
// strings. Platforms without mmap — or runs with SHARP_RECORD_NOMMAP=1 — use
// the streaming scanner unchanged.
package record

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// NoMmapEnv names the environment variable that disables the mmap fast path
// (value "1"), forcing every reader down the portable streaming scanner.
// Used by the crash-test suite to exercise the fallback.
const NoMmapEnv = "SHARP_RECORD_NOMMAP"

func mmapDisabled() bool { return os.Getenv(NoMmapEnv) == "1" }

// readParallelism holds the configured block-decode parallelism
// (0 = GOMAXPROCS at call time).
var readParallelism atomic.Int64

// SetReadParallelism bounds the worker pool used to decode independent data
// blocks on the mapped read path. It is wired to the CLI --parallel flags:
// 0 restores the default (GOMAXPROCS at call time); negative values are
// clamped to 1 (strictly serial decode).
func SetReadParallelism(n int) {
	if n < 0 {
		n = 1
	}
	readParallelism.Store(int64(n))
}

// ReadParallelism reports the effective block-decode parallelism.
func ReadParallelism() int {
	if n := readParallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// mappedLog is a read-only mapping of a log file. The descriptor is closed
// immediately (the mapping outlives it); unmap must be called exactly once.
type mappedLog struct {
	data  []byte
	unmap func()
}

// openMapped maps the file at path read-only. It returns (nil, nil) when the
// fast path is unavailable — mmap unsupported, disabled, or refused by the
// kernel (e.g. an empty file) — in which case callers fall back to the
// streaming scanner, preserving behavior exactly.
func openMapped(path string) (*mappedLog, error) {
	if !mmapSupported || mmapDisabled() {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, nil
	}
	return &mappedLog{data: data, unmap: unmap}, nil
}

// blockRef locates one data block inside a mapped log. dictLen snapshots the
// dictionary length visible to the block, so a block referencing ids its
// preceding dict blocks never introduced fails exactly like the streaming
// scanner ("dictionary id N out of range").
type blockRef struct {
	off      int64 // frame start offset
	n        int   // rows
	firstRow int   // global row index of the block's first row
	dictLen  int
	firstRun int
	lastRun  int
}

// end returns the offset just past the block's payload.
func (ref blockRef) end() int64 { return ref.off + binFrameLen + int64(ref.n)*binRowBytes }

// mapWalk is the result of the serial structure pass over a mapped log.
// Dictionary blocks are fully validated and decoded during the walk; data
// blocks are deferred to the worker pool, so a walk-level verdict (torn or
// err) is only *pending*: it stands unless an earlier data block fails
// verification, in which case that block — the lowest-offset failure, as in
// the streaming scan — decides the outcome instead.
type mapWalk struct {
	refs  []blockRef
	dict  []string
	total int   // rows across refs
	torn  bool  // pending torn-tail verdict
	err   error // pending hard-corruption verdict
}

// failAt applies the streaming scanner's classification to a bad dict block:
// torn if it is the file's final block, hard corruption otherwise.
func (w mapWalk) failAt(off int64, final bool, msg string) mapWalk {
	if final {
		w.torn = true
	} else {
		w.err = fmt.Errorf("record: corrupt block at offset %d: %s", off, msg)
	}
	return w
}

// walkMapped parses the frame structure of a mapped binary log. It mirrors
// scanBinaryImpl block for block, except that data-block checksums and
// decodes are deferred to the caller via refs.
func walkMapped(data []byte) (mapWalk, error) {
	var w mapWalk
	if len(data) < len(binMagic) || string(data[:len(binMagic)]) != binMagic {
		return w, errors.New("record: missing binary magic")
	}
	le := binary.LittleEndian
	off, size := int64(len(binMagic)), int64(len(data))
	for off < size {
		if size-off < binFrameLen {
			w.torn = true // partial frame: crash signature
			return w, nil
		}
		frame := data[off : off+binFrameLen]
		kind := frame[0]
		nRows := int(le.Uint32(frame[1:]))
		firstRun := int(int32(le.Uint32(frame[5:])))
		lastRun := int(int32(le.Uint32(frame[9:])))
		payloadLen := int(le.Uint32(frame[13:]))
		switch {
		case kind != binKindDict && kind != binKindData:
			w.err = fmt.Errorf("record: corrupt block at offset %d: unknown kind 0x%02x", off, kind)
			return w, nil
		case payloadLen > binMaxPayload || nRows <= 0:
			w.err = fmt.Errorf("record: corrupt block at offset %d: implausible frame", off)
			return w, nil
		case kind == binKindData && payloadLen != nRows*binRowBytes:
			w.err = fmt.Errorf("record: corrupt block at offset %d: payload/row-count mismatch", off)
			return w, nil
		}
		if size-off-binFrameLen < int64(payloadLen) {
			w.torn = true // partial payload: crash signature
			return w, nil
		}
		payload := data[off+binFrameLen : off+binFrameLen+int64(payloadLen)]
		final := off+binFrameLen+int64(payloadLen) == size
		if kind == binKindDict {
			if crc := crc32.Update(crc32.Update(0, binCRC, frame[:17]), binCRC, payload); crc != le.Uint32(frame[17:]) {
				return w.failAt(off, final, "checksum mismatch"), nil
			}
			got := 0
			for p := 0; p < len(payload); {
				if p+4 > len(payload) {
					return w.failAt(off, final, "truncated dictionary entry"), nil
				}
				l := int(le.Uint32(payload[p:]))
				p += 4
				if l < 0 || p+l > len(payload) {
					return w.failAt(off, final, "dictionary entry overruns payload"), nil
				}
				// string() copies the bytes out of the mapping: decoded rows
				// must never retain mapped memory past unmap.
				w.dict = append(w.dict, string(payload[p:p+l]))
				p += l
				got++
			}
			if got != nRows {
				return w.failAt(off, final, fmt.Sprintf("dictionary has %d entries, frame says %d", got, nRows)), nil
			}
		} else {
			w.refs = append(w.refs, blockRef{
				off: off, n: nRows, firstRow: w.total,
				dictLen: len(w.dict), firstRun: firstRun, lastRun: lastRun,
			})
			w.total += nRows
		}
		off += binFrameLen + int64(payloadLen)
	}
	return w, nil
}

// decodeRef checksum-verifies one data block and decodes it into blk
// (len ref.n), in the streaming scanner's validation order: CRC, column
// decode, frame run-range cross-check.
func decodeRef(data []byte, ref blockRef, dict []string, blk []Row) error {
	frame := data[ref.off : ref.off+binFrameLen]
	payload := data[ref.off+binFrameLen : ref.end()]
	if crc := crc32.Update(crc32.Update(0, binCRC, frame[:17]), binCRC, payload); crc != binary.LittleEndian.Uint32(frame[17:]) {
		return errors.New("checksum mismatch")
	}
	if err := decodeBlockInto(payload, ref.n, dict[:ref.dictLen], blk); err != nil {
		return err
	}
	if blk[0].Run != ref.firstRun || blk[ref.n-1].Run != ref.lastRun {
		return errors.New("frame run range disagrees with rows")
	}
	return nil
}

// decodeRefs decodes every data block into its disjoint window of out,
// fanning out across min(ReadParallelism, len(refs)) workers over an atomic
// work counter. Windows never overlap, so no ordering or merge is needed; it
// returns the index and error of the lowest-offset failing block, or -1.
func decodeRefs(data []byte, refs []blockRef, dict []string, out []Row) (int, error) {
	window := func(ref blockRef) []Row {
		return out[ref.firstRow : ref.firstRow+ref.n : ref.firstRow+ref.n]
	}
	p := ReadParallelism()
	if p > len(refs) {
		p = len(refs)
	}
	if p <= 1 {
		for i, ref := range refs {
			if err := decodeRef(data, ref, dict, window(ref)); err != nil {
				return i, err
			}
		}
		return -1, nil
	}
	var (
		next   atomic.Int64
		minBad atomic.Int64
		errs   = make([]error, len(refs))
		wg     sync.WaitGroup
	)
	minBad.Store(int64(len(refs)))
	for k := 0; k < p; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(refs) || int64(i) > minBad.Load() {
					return
				}
				if err := decodeRef(data, refs[i], dict, window(refs[i])); err != nil {
					errs[i] = err
					for {
						cur := minBad.Load()
						if int64(i) >= cur || minBad.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if bad := int(minBad.Load()); bad < len(refs) {
		return bad, errs[bad]
	}
	return -1, nil
}

// readMapped decodes a whole mapped log, appending to dst (reusing its
// backing capacity). torn reports a repairable torn tail — including a
// final-block verification failure, exactly as in the streaming scanner.
func readMapped(data []byte, dst []Row) ([]Row, bool, error) {
	w, err := walkMapped(data)
	if err != nil {
		return nil, false, err
	}
	base := len(dst)
	need := base + w.total
	if cap(dst) < need {
		grown := make([]Row, need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:need]
	}
	if bad, derr := decodeRefs(data, w.refs, w.dict, dst[base:need]); bad >= 0 {
		ref := w.refs[bad]
		if w.err == nil && !w.torn && ref.end() == int64(len(data)) {
			return dst[:base+ref.firstRow], true, nil // torn final block
		}
		return nil, false, fmt.Errorf("record: corrupt block at offset %d: %s", ref.off, derr)
	}
	if w.err != nil {
		return nil, false, w.err
	}
	return dst, w.torn, nil
}

// readBinaryFileFast is the mapped implementation behind ReadFile for binary
// logs; ok=false means the fast path is unavailable and the caller must use
// the streaming scanner instead.
func readBinaryFileFast(path string, dst []Row) (rows []Row, torn, ok bool, err error) {
	m, err := openMapped(path)
	if err != nil {
		return nil, false, true, err
	}
	if m == nil {
		return nil, false, false, nil
	}
	defer m.unmap()
	rows, torn, err = readMapped(m.data, dst)
	return rows, torn, true, err
}

// streamMapped delivers decoded blocks to sink in frame order. With one
// worker a single reused batch makes the loop allocation-free; with more,
// pooled batches flow through an ordered hand-off so sink sees blocks in
// exactly the streaming scanner's order while they decode concurrently. A
// torn tail is reported, not an error, mirroring scanBinaryStream.
func streamMapped(data []byte, sink func([]Row) error) (bool, error) {
	w, err := walkMapped(data)
	if err != nil {
		return false, err
	}
	// fail resolves a block-verification failure at data-block index i.
	fail := func(i int, derr error) (bool, error) {
		ref := w.refs[i]
		if w.err == nil && !w.torn && ref.end() == int64(len(data)) {
			return true, nil // torn final block: silently dropped
		}
		return false, fmt.Errorf("record: corrupt block at offset %d: %s", ref.off, derr)
	}
	p := ReadParallelism()
	if p > len(w.refs) {
		p = len(w.refs)
	}
	if p <= 1 {
		batch := make([]Row, binBlockRows)
		for i, ref := range w.refs {
			// SHARP's writer caps blocks at binBlockRows, but any nRows whose
			// payload length checks out is structurally valid (the streaming
			// scanner decodes it); grow rather than panic on a foreign block.
			if ref.n > len(batch) {
				batch = make([]Row, ref.n)
			}
			blk := batch[:ref.n]
			if derr := decodeRef(data, ref, w.dict, blk); derr != nil {
				return fail(i, derr)
			}
			if err := sink(blk); err != nil {
				return false, err
			}
		}
		return w.torn, w.err
	}
	type res struct {
		blk []Row
		err error
	}
	type job struct {
		i int
		c chan res
	}
	pool := sync.Pool{New: func() any { return make([]Row, binBlockRows) }}
	jobs := make(chan job, p)
	order := make(chan chan res, 2*p)
	done := make(chan struct{})
	var stop sync.Once
	quit := func() { stop.Do(func() { close(done) }) }
	// On early return (sink error, corrupt block) the caller unmaps data, so
	// no worker may be mid-decode when we leave: close done, then wait for
	// every worker to drain (deferred LIFO: quit before Wait).
	var wg sync.WaitGroup
	defer wg.Wait()
	defer quit()
	go func() {
		defer close(order)
		defer close(jobs)
		for i := range w.refs {
			c := make(chan res, 1)
			select {
			case jobs <- job{i: i, c: c}:
			case <-done:
				return
			}
			select {
			case order <- c:
			case <-done:
				return
			}
		}
	}()
	for k := 0; k < p; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case j, open := <-jobs:
					if !open {
						return
					}
					ref := w.refs[j.i]
					blk := pool.Get().([]Row)
					if cap(blk) < ref.n { // oversized foreign block: see serial path
						blk = make([]Row, ref.n)
					}
					blk = blk[:ref.n]
					j.c <- res{blk: blk, err: decodeRef(data, ref, w.dict, blk)}
				case <-done:
					return
				}
			}
		}()
	}
	i := 0
	for c := range order {
		r := <-c
		if r.err != nil {
			return fail(i, r.err)
		}
		if err := sink(r.blk); err != nil {
			return false, err
		}
		pool.Put(r.blk[:cap(r.blk)]) //nolint:staticcheck // reused block buffers
		i++
	}
	return w.torn, w.err
}

// ReadFileInto is ReadFile reusing dst's backing array: dst is truncated to
// zero length and the decoded rows are appended, so a caller replaying many
// logs of similar size (the service recovery loop, the replay benchmarks)
// pays for its row slab once instead of re-zeroing hundreds of megabytes per
// read. Pass nil for plain ReadFile behavior.
func ReadFileInto(path string, dst []Row) ([]Row, error) {
	dst = dst[:0]
	format, err := sniffRead(path)
	if err != nil {
		return nil, err
	}
	switch format {
	case formatSegmented:
		return readSegmented(path, dst)
	case FormatBinary:
		if rows, _, ok, err := readBinaryFileFast(path, dst); ok {
			return rows, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		_, rows, err := scanBinaryDst(f, dst)
		return rows, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readInto(bufio.NewReaderSize(f, 1<<16), dst)
}

// ReadRuns decodes only the rows whose Run index falls within [lo, hi]. On
// the mapped path, data blocks whose frame-header run range does not overlap
// the window are skipped without being decoded or checksum-verified (the
// frame header is trusted for skipped blocks — use ReadFile for a fully
// validating read), so a small run window out of a multi-gigabyte log
// touches only the frames plus the overlapping blocks. Without mmap it
// degrades to a filtered streaming scan.
func ReadRuns(path string, lo, hi int) ([]Row, error) {
	if hi < lo {
		return nil, nil
	}
	format, err := sniffRead(path)
	if err != nil {
		return nil, err
	}
	switch format {
	case formatSegmented:
		return readRunsSegmented(path, lo, hi)
	case FormatBinary:
		m, err := openMapped(path)
		if err != nil {
			return nil, err
		}
		if m != nil {
			defer m.unmap()
			return readRunsMapped(m.data, lo, hi, nil)
		}
	}
	var out []Row
	err = StreamFile(path, func(batch []Row) error {
		for i := range batch {
			if batch[i].Run >= lo && batch[i].Run <= hi {
				out = append(out, batch[i])
			}
		}
		return nil
	})
	return out, err
}

// readRunsMapped is the block-skipping ranged read over one mapped log,
// appending matching rows to dst.
func readRunsMapped(data []byte, lo, hi int, dst []Row) ([]Row, error) {
	w, err := walkMapped(data)
	if err != nil {
		return nil, err
	}
	batch := make([]Row, binBlockRows)
	for i, ref := range w.refs {
		if ref.lastRun < lo || ref.firstRun > hi {
			continue // frame header proves no overlap
		}
		if ref.n > len(batch) { // oversized foreign block: see streamMapped
			batch = make([]Row, ref.n)
		}
		blk := batch[:ref.n]
		if derr := decodeRef(data, ref, w.dict, blk); derr != nil {
			if w.err == nil && !w.torn && ref.end() == int64(len(data)) {
				return dst, nil // torn final block: silently dropped
			}
			return nil, fmt.Errorf("record: corrupt block at offset %d: %s", w.refs[i].off, derr)
		}
		for j := range blk {
			if blk[j].Run >= lo && blk[j].Run <= hi {
				dst = append(dst, blk[j])
			}
		}
	}
	if w.err != nil {
		return nil, w.err
	}
	return dst, nil
}
