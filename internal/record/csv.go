// Package record implements SHARP's Logger module (§IV-d): tidy-data CSV
// logging of every metric of every run, plus a human- and machine-readable
// Markdown metadata file that fully describes the experiment and the System
// Under Test. SHARP can parse its own metadata file to recreate the
// experiment — the round-trip that makes records executable documentation.
package record

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"
)

// Row is one tidy-data observation: exactly one metric value for one
// concurrent instance of one run. Wide results (several metrics per run)
// become several rows, which keeps downstream statistical processing
// uniform (the "tidy data" convention the paper adopts).
type Row struct {
	// Timestamp is the observation completion time (UTC).
	Timestamp time.Time
	// Experiment names the experiment (e.g. "fig6").
	Experiment string
	// Workload names the benchmark or function (e.g. "hotspot").
	Workload string
	// Backend names the execution backend ("local", "faas", "sim", ...).
	Backend string
	// Machine names the (possibly simulated) machine.
	Machine string
	// Day is the measurement day index (1-based; 0 when not applicable).
	Day int
	// Run is the repetition index within the experiment (1-based).
	Run int
	// Instance is the concurrent-instance index within the run (1-based);
	// each concurrent instance gets its own row. 0 marks a whole-run
	// failure record.
	Instance int
	// Metric is the metric name ("exec_time", "detection_time", ...).
	Metric string
	// Value is the measured value.
	Value float64
	// Unit is the measurement unit ("seconds", "bytes", ...).
	Unit string
	// Status marks the observation outcome: "ok", "error", or "" for legacy
	// logs that predate failure-aware logging.
	Status string
	// Attempt is the number of backend attempts consumed to produce this
	// observation (1 without retries; 0 in legacy logs).
	Attempt int
	// Error is the failure message for Status "error" rows (empty
	// otherwise). Failed runs and instances are recorded as data, never
	// silently dropped.
	Error string
}

// Header is the CSV column order; it doubles as the field list documented
// in the metadata file. The status/attempt/error columns were added by the
// resilience layer; logs written before it (the first len(legacyHeader)
// columns only) still parse.
var Header = []string{
	"timestamp", "experiment", "workload", "backend", "machine",
	"day", "run", "instance", "metric", "value", "unit",
	"status", "attempt", "error",
}

// legacyHeaderLen is the column count of pre-resilience logs.
const legacyHeaderLen = 11

// Row.Status values and the failure-row metric name.
const (
	// StatusOK marks a successful observation.
	StatusOK = "ok"
	// StatusError marks a failed run or instance recorded as data.
	StatusError = "error"
	// MetricError is the metric name of failure rows (value 1 per failure).
	MetricError = "error"
)

// FieldDocs maps each CSV column to its documentation line, written to the
// metadata file so every field of the raw data is described (§IV-d).
var FieldDocs = map[string]string{
	"timestamp":  "observation completion time, RFC 3339, UTC",
	"experiment": "experiment identifier",
	"workload":   "benchmark or function name",
	"backend":    "execution backend (local, process, faas, sim)",
	"machine":    "machine (possibly simulated) that executed the run",
	"day":        "measurement day index, 1-based; 0 if not applicable",
	"run":        "repetition index within the experiment, 1-based",
	"instance":   "concurrent instance index within the run, 1-based; 0 = whole-run failure",
	"metric":     "metric name (e.g. exec_time)",
	"value":      "measured value (float)",
	"unit":       "unit of the value",
	"status":     "observation outcome: ok or error",
	"attempt":    "backend attempts consumed (1 without retries)",
	"error":      "failure message for error rows",
}

// strings converts a Row to CSV fields in Header order.
func (r Row) strings() []string {
	return []string{
		r.Timestamp.UTC().Format(time.RFC3339Nano),
		r.Experiment, r.Workload, r.Backend, r.Machine,
		strconv.Itoa(r.Day), strconv.Itoa(r.Run), strconv.Itoa(r.Instance),
		r.Metric, strconv.FormatFloat(r.Value, 'g', -1, 64), r.Unit,
		r.Status, strconv.Itoa(r.Attempt), r.Error,
	}
}

// parseRow converts CSV fields back to a Row. Both the current layout and
// the legacy pre-resilience layout (no status/attempt/error columns) are
// accepted.
func parseRow(fields []string) (Row, error) {
	if len(fields) != len(Header) && len(fields) != legacyHeaderLen {
		return Row{}, fmt.Errorf("record: row has %d fields, want %d", len(fields), len(Header))
	}
	ts, err := time.Parse(time.RFC3339Nano, fields[0])
	if err != nil {
		return Row{}, fmt.Errorf("record: bad timestamp %q: %w", fields[0], err)
	}
	day, err := strconv.Atoi(fields[5])
	if err != nil {
		return Row{}, fmt.Errorf("record: bad day %q", fields[5])
	}
	run, err := strconv.Atoi(fields[6])
	if err != nil {
		return Row{}, fmt.Errorf("record: bad run %q", fields[6])
	}
	inst, err := strconv.Atoi(fields[7])
	if err != nil {
		return Row{}, fmt.Errorf("record: bad instance %q", fields[7])
	}
	val, err := strconv.ParseFloat(fields[9], 64)
	if err != nil {
		return Row{}, fmt.Errorf("record: bad value %q", fields[9])
	}
	row := Row{
		Timestamp: ts, Experiment: fields[1], Workload: fields[2],
		Backend: fields[3], Machine: fields[4],
		Day: day, Run: run, Instance: inst,
		Metric: fields[8], Value: val, Unit: fields[10],
	}
	if len(fields) == len(Header) {
		row.Status = fields[11]
		attempt, err := strconv.Atoi(fields[12])
		if err != nil {
			return Row{}, fmt.Errorf("record: bad attempt %q", fields[12])
		}
		row.Attempt = attempt
		row.Error = fields[13]
	}
	return row, nil
}

// Writer streams tidy rows to CSV.
type Writer struct {
	w           *csv.Writer
	c           io.Closer
	wroteHeader bool
	rows        int
}

// NewWriter wraps an io.Writer; the CSV header is emitted with the first
// row.
func NewWriter(w io.Writer) *Writer { return &Writer{w: csv.NewWriter(w)} }

// Create opens path for writing (truncating) and returns a Writer that
// closes the file on Close.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{w: csv.NewWriter(f), c: f}, nil
}

// Write appends one row. Rows counts only successful writes: the counter is
// incremented after encoding/csv accepts the record, not before (the old
// order overcounted when the underlying writer failed).
func (w *Writer) Write(r Row) error {
	if !w.wroteHeader {
		if err := w.w.Write(Header); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	if err := w.w.Write(r.strings()); err != nil {
		return err
	}
	w.rows++
	return nil
}

// WriteAll appends all rows.
func (w *Writer) WriteAll(rows []Row) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the number of data rows written.
func (w *Writer) Rows() int { return w.rows }

// Close flushes and closes the underlying file if any.
func (w *Writer) Close() error {
	if !w.wroteHeader { // ensure even empty logs have a header
		if err := w.w.Write(Header); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	w.w.Flush()
	if err := w.w.Error(); err != nil {
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// Read parses tidy rows from r; the first record must be the Header (the
// legacy pre-resilience header, lacking the status/attempt/error columns,
// is also accepted).
func Read(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("record: missing header")
	}
	if len(records[0]) != len(Header) && len(records[0]) != legacyHeaderLen {
		return nil, fmt.Errorf("record: unexpected header %v", records[0])
	}
	for i, col := range records[0] {
		if Header[i] != col {
			return nil, fmt.Errorf("record: unexpected header %v", records[0])
		}
	}
	rows := make([]Row, 0, len(records)-1)
	for _, rec := range records[1:] {
		row, err := parseRow(rec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReadFile parses a CSV log file.
func ReadFile(path string) ([]Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Filter returns the rows matching all non-zero criteria of the selector.
type Filter struct {
	Experiment, Workload, Backend, Machine, Metric string
	Day                                            int
}

// Select filters rows.
func Select(rows []Row, f Filter) []Row {
	var out []Row
	for _, r := range rows {
		if f.Experiment != "" && r.Experiment != f.Experiment {
			continue
		}
		if f.Workload != "" && r.Workload != f.Workload {
			continue
		}
		if f.Backend != "" && r.Backend != f.Backend {
			continue
		}
		if f.Machine != "" && r.Machine != f.Machine {
			continue
		}
		if f.Metric != "" && r.Metric != f.Metric {
			continue
		}
		if f.Day != 0 && r.Day != f.Day {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Values extracts the Value column of rows, in order.
func Values(rows []Row) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r.Value
	}
	return out
}

// GroupBy partitions rows by a key function, returning keys sorted.
func GroupBy(rows []Row, key func(Row) string) (keys []string, groups map[string][]Row) {
	groups = map[string][]Row{}
	for _, r := range rows {
		k := key(r)
		groups[k] = append(groups[k], r)
	}
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, groups
}
