// Package record implements SHARP's Logger module (§IV-d): tidy-data CSV
// logging of every metric of every run, plus a human- and machine-readable
// Markdown metadata file that fully describes the experiment and the System
// Under Test. SHARP can parse its own metadata file to recreate the
// experiment — the round-trip that makes records executable documentation.
package record

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sharp/internal/fsx"
)

// Row is one tidy-data observation: exactly one metric value for one
// concurrent instance of one run. Wide results (several metrics per run)
// become several rows, which keeps downstream statistical processing
// uniform (the "tidy data" convention the paper adopts).
type Row struct {
	// Timestamp is the observation completion time (UTC).
	Timestamp time.Time
	// Experiment names the experiment (e.g. "fig6").
	Experiment string
	// Workload names the benchmark or function (e.g. "hotspot").
	Workload string
	// Backend names the execution backend ("local", "faas", "sim", ...).
	Backend string
	// Machine names the (possibly simulated) machine.
	Machine string
	// Day is the measurement day index (1-based; 0 when not applicable).
	Day int
	// Run is the repetition index within the experiment (1-based).
	Run int
	// Instance is the concurrent-instance index within the run (1-based);
	// each concurrent instance gets its own row. 0 marks a whole-run
	// failure record.
	Instance int
	// Metric is the metric name ("exec_time", "detection_time", ...).
	Metric string
	// Value is the measured value.
	Value float64
	// Unit is the measurement unit ("seconds", "bytes", ...).
	Unit string
	// Status marks the observation outcome: "ok", "error", or "" for legacy
	// logs that predate failure-aware logging.
	Status string
	// Attempt is the number of backend attempts consumed to produce this
	// observation (1 without retries; 0 in legacy logs).
	Attempt int
	// Error is the failure message for Status "error" rows (empty
	// otherwise). Failed runs and instances are recorded as data, never
	// silently dropped.
	Error string
}

// Header is the CSV column order; it doubles as the field list documented
// in the metadata file. The status/attempt/error columns were added by the
// resilience layer; logs written before it (the first len(legacyHeader)
// columns only) still parse.
var Header = []string{
	"timestamp", "experiment", "workload", "backend", "machine",
	"day", "run", "instance", "metric", "value", "unit",
	"status", "attempt", "error",
}

// legacyHeaderLen is the column count of pre-resilience logs.
const legacyHeaderLen = 11

// Row.Status values and the failure-row metric name.
const (
	// StatusOK marks a successful observation.
	StatusOK = "ok"
	// StatusError marks a failed run or instance recorded as data.
	StatusError = "error"
	// MetricError is the metric name of failure rows (value 1 per failure).
	MetricError = "error"
)

// FieldDocs maps each CSV column to its documentation line, written to the
// metadata file so every field of the raw data is described (§IV-d).
var FieldDocs = map[string]string{
	"timestamp":  "observation completion time, RFC 3339, UTC",
	"experiment": "experiment identifier",
	"workload":   "benchmark or function name",
	"backend":    "execution backend (local, process, faas, sim)",
	"machine":    "machine (possibly simulated) that executed the run",
	"day":        "measurement day index, 1-based; 0 if not applicable",
	"run":        "repetition index within the experiment, 1-based",
	"instance":   "concurrent instance index within the run, 1-based; 0 = whole-run failure",
	"metric":     "metric name (e.g. exec_time)",
	"value":      "measured value (float)",
	"unit":       "unit of the value",
	"status":     "observation outcome: ok or error",
	"attempt":    "backend attempts consumed (1 without retries)",
	"error":      "failure message for error rows",
}

// strings converts a Row to CSV fields in Header order.
func (r Row) strings() []string {
	return []string{
		r.Timestamp.UTC().Format(time.RFC3339Nano),
		r.Experiment, r.Workload, r.Backend, r.Machine,
		strconv.Itoa(r.Day), strconv.Itoa(r.Run), strconv.Itoa(r.Instance),
		r.Metric, strconv.FormatFloat(r.Value, 'g', -1, 64), r.Unit,
		r.Status, strconv.Itoa(r.Attempt), r.Error,
	}
}

// parseRow converts CSV fields back to a Row. Both the current layout and
// the legacy pre-resilience layout (no status/attempt/error columns) are
// accepted.
func parseRow(fields []string) (Row, error) {
	if len(fields) != len(Header) && len(fields) != legacyHeaderLen {
		return Row{}, fmt.Errorf("record: row has %d fields, want %d", len(fields), len(Header))
	}
	ts, err := time.Parse(time.RFC3339Nano, fields[0])
	if err != nil {
		return Row{}, fmt.Errorf("record: bad timestamp %q: %w", fields[0], err)
	}
	day, err := strconv.Atoi(fields[5])
	if err != nil {
		return Row{}, fmt.Errorf("record: bad day %q", fields[5])
	}
	run, err := strconv.Atoi(fields[6])
	if err != nil {
		return Row{}, fmt.Errorf("record: bad run %q", fields[6])
	}
	inst, err := strconv.Atoi(fields[7])
	if err != nil {
		return Row{}, fmt.Errorf("record: bad instance %q", fields[7])
	}
	val, err := strconv.ParseFloat(fields[9], 64)
	if err != nil {
		return Row{}, fmt.Errorf("record: bad value %q", fields[9])
	}
	row := Row{
		Timestamp: ts, Experiment: fields[1], Workload: fields[2],
		Backend: fields[3], Machine: fields[4],
		Day: day, Run: run, Instance: inst,
		Metric: fields[8], Value: val, Unit: fields[10],
	}
	if len(fields) == len(Header) {
		row.Status = fields[11]
		attempt, err := strconv.Atoi(fields[12])
		if err != nil {
			return Row{}, fmt.Errorf("record: bad attempt %q", fields[12])
		}
		row.Attempt = attempt
		row.Error = fields[13]
	}
	return row, nil
}

// Options tunes a Writer's durability/latency trade-off (§IV-d: a crash
// must not silently lose the recorded distribution). The zero value is the
// legacy policy: buffer everything, flush only on Close.
type Options struct {
	// FlushEvery flushes the log buffer to the OS after every N rows
	// (1 = per row). 0 keeps the legacy flush-on-Close-only policy.
	FlushEvery int
	// Sync additionally fsyncs the underlying file on every flush, making
	// each flushed row durable against power loss (not just process death).
	// It has no effect on writers not backed by an *os.File.
	Sync bool
	// Format selects the on-disk encoding for created logs. FormatAuto (the
	// zero value) picks by path extension: ".sharpb" is the binary columnar
	// format, everything else CSV. Read paths ignore it — they sniff the
	// file's magic bytes instead.
	Format Format
	// SegmentRows, when positive, rolls binary logs into self-contained
	// segments of about this many rows under <path>.seg/, with a manifest at
	// <path> (see segment.go). Truncation, repair, and resume then touch only
	// the last segment instead of one ever-growing file. 0 keeps the
	// single-file layout. CSV logs ignore it.
	SegmentRows int
}

// Writer streams tidy rows to a log, optionally flushing (and fsyncing) at a
// configurable row cadence so a crash loses at most the last unflushed rows
// instead of the whole buffered log. The encoding behind it is either the
// CSV tidy log or the binary columnar format (per Options.Format); the flush
// policy, row accounting, and crash-repair contract are identical for both.
type Writer struct {
	w           *csv.Writer
	c           io.Closer
	f           *os.File   // non-nil when file-backed (enables Sync)
	bin         *binWriter // non-nil for binary columnar logs
	seg         *segWriter // non-nil for segmented binary logs
	opts        Options
	wroteHeader bool
	rows        int
	unflushed   int
}

// NewWriter wraps an io.Writer; the CSV header is emitted with the first
// row.
func NewWriter(w io.Writer) *Writer { return &Writer{w: csv.NewWriter(w)} }

// Create opens path for writing (truncating) and returns a Writer that
// closes the file on Close, with the legacy buffer-until-Close policy.
func Create(path string) (*Writer, error) { return CreateDurable(path, Options{}) }

// CreateDurable opens path for writing (truncating) with an explicit flush
// policy, so rows reach the OS (and optionally the disk) while the campaign
// is still running. The encoding follows Options.Format (by extension when
// FormatAuto).
func CreateDurable(path string, o Options) (*Writer, error) {
	if o.resolve(path) == FormatBinary {
		if o.SegmentRows > 0 {
			return createSegmented(path, o)
		}
		bw, err := createBinary(path, o)
		if err != nil {
			return nil, err
		}
		return &Writer{bin: bw, opts: o}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{w: csv.NewWriter(f), c: f, f: f, opts: o}, nil
}

// Write appends one row. Rows counts only successful writes: the counter is
// incremented after encoding/csv accepts the record, not before (the old
// order overcounted when the underlying writer failed).
func (w *Writer) Write(r Row) error {
	if w.bin != nil || w.seg != nil {
		var err error
		if w.seg != nil {
			err = w.seg.add(&r)
		} else {
			err = w.bin.add(&r)
		}
		if err != nil {
			return err
		}
		w.rows++
		w.unflushed++
		if w.opts.FlushEvery > 0 && w.unflushed >= w.opts.FlushEvery {
			return w.Flush()
		}
		return nil
	}
	if !w.wroteHeader {
		if err := w.w.Write(Header); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	if err := w.w.Write(r.strings()); err != nil {
		return err
	}
	w.rows++
	w.unflushed++
	if w.opts.FlushEvery > 0 && w.unflushed >= w.opts.FlushEvery {
		return w.Flush()
	}
	return nil
}

// WriteAll appends all rows.
func (w *Writer) WriteAll(rows []Row) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the number of data rows in the log: rows written through this
// Writer plus, for writers from OpenAppend, the valid rows already on disk.
func (w *Writer) Rows() int { return w.rows }

// Flush pushes buffered rows to the underlying writer and, when the Sync
// option is set on a file-backed writer, fsyncs them to stable storage. It
// is called automatically per the FlushEvery policy and may be called
// explicitly at checkpoints.
func (w *Writer) Flush() error {
	if w.seg != nil {
		w.unflushed = 0
		return w.seg.flush()
	}
	if w.bin != nil {
		w.unflushed = 0
		return w.bin.flush()
	}
	w.w.Flush()
	if err := w.w.Error(); err != nil {
		return err
	}
	w.unflushed = 0
	if w.opts.Sync && w.f != nil {
		return w.f.Sync()
	}
	return nil
}

// Close flushes and closes the underlying file if any. The file is closed
// unconditionally — a flush error must not leak the descriptor — and flush
// and close errors are joined.
func (w *Writer) Close() error {
	if w.seg != nil {
		return w.seg.close()
	}
	if w.bin != nil {
		return w.bin.close()
	}
	var err error
	if !w.wroteHeader { // ensure even empty logs have a header
		err = w.w.Write(Header)
		w.wroteHeader = true
	}
	if err == nil {
		err = w.Flush()
	}
	if w.c != nil {
		err = errors.Join(err, w.c.Close())
	}
	return err
}

// validateHeader checks a parsed header record against Header, accepting
// the legacy pre-resilience prefix.
func validateHeader(rec []string) error {
	if len(rec) != len(Header) && len(rec) != legacyHeaderLen {
		return fmt.Errorf("record: unexpected header %v", rec)
	}
	for i, col := range rec {
		if Header[i] != col {
			return fmt.Errorf("record: unexpected header %v", rec)
		}
	}
	return nil
}

// Read parses tidy rows from r; the first record must be the Header (the
// legacy pre-resilience header, lacking the status/attempt/error columns,
// is also accepted). Records are streamed with a reused field buffer rather
// than materialized via ReadAll, so reading a multi-million-row log costs
// one Row slice, not a second [][]string copy of the whole file.
func Read(r io.Reader) ([]Row, error) {
	return readInto(r, nil)
}

// ReadHint is Read with an expected row count: dst is preallocated to hint
// rows up front, so replaying a log of known length costs one allocation
// instead of a grow-and-copy cascade. A hint of 0 (or a wrong hint) is
// safe — it only affects capacity.
func ReadHint(r io.Reader, hint int) ([]Row, error) {
	var dst []Row
	if hint > 0 {
		dst = make([]Row, 0, hint)
	}
	return readInto(r, dst)
}

// readInto streams rows from r, appending to dst (which may carry
// preallocated capacity).
func readInto(r io.Reader, dst []Row) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true // parseRow copies what it keeps
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("record: missing header")
	}
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	if err := validateHeader(header); err != nil {
		return nil, err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return nil, fmt.Errorf("record: %w", err)
		}
		row, err := parseRow(rec)
		if err != nil {
			return nil, err
		}
		dst = append(dst, row)
	}
}

// Stream parses rows from r in the given format, delivering them to fn in
// batches. The batch slice is reused between calls, so fn must copy any row
// it retains. Replaying this way touches one block-sized scratch batch
// instead of materializing the whole log, which is what makes streaming
// consumers (sharp convert, the replay benchmarks) immune to log size.
// Format must be explicit — an io.Reader has no magic to sniff twice — and a
// torn binary tail is silently dropped, as in ReadFile.
func Stream(r io.Reader, format Format, fn func(batch []Row) error) error {
	switch format {
	case FormatBinary:
		_, err := scanBinaryStream(r, fn)
		return err
	case FormatCSV:
		return streamCSV(r, fn)
	default:
		return fmt.Errorf("record: Stream requires an explicit format, got %q", format)
	}
}

// StreamFile is Stream over a log file, sniffing the format from the magic
// bytes. Binary logs stream from an mmap view when the platform supports it
// (decoding blocks in parallel per SetReadParallelism), falling back to the
// buffered scanner otherwise; the delivered batches are identical either way.
func StreamFile(path string, fn func(batch []Row) error) error {
	format, err := sniffRead(path)
	if err != nil {
		return err
	}
	if format == formatSegmented {
		return streamSegmented(path, fn)
	}
	if emptyBinaryArtifact(path) {
		return nil
	}
	if format == FormatBinary {
		ml, err := openMapped(path)
		if err != nil {
			return err
		}
		if ml != nil {
			defer ml.unmap()
			_, err := streamMapped(ml.data, fn)
			return err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Stream(bufio.NewReaderSize(f, 1<<16), format, fn)
}

// streamCSV delivers parsed CSV rows to fn in reused batches.
func streamCSV(r io.Reader, fn func([]Row) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true // parseRow copies what it keeps
	header, err := cr.Read()
	if err == io.EOF {
		return fmt.Errorf("record: missing header")
	}
	if err != nil {
		return fmt.Errorf("record: %w", err)
	}
	if err := validateHeader(header); err != nil {
		return err
	}
	batch := make([]Row, 0, binBlockRows)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			if len(batch) > 0 {
				return fn(batch)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("record: %w", err)
		}
		row, err := parseRow(rec)
		if err != nil {
			return err
		}
		if batch = append(batch, row); len(batch) == binBlockRows {
			if err := fn(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
}

// ReadFile parses a log file in either format (sniffed from the magic
// bytes). For CSV the row slice is preallocated from the file size (tidy
// rows are ~100 bytes), so resuming a large campaign does not grow-and-copy
// its way through millions of appends; for binary logs a fresh sidecar
// index supplies the exact count.
func ReadFile(path string) ([]Row, error) {
	if format, err := sniffRead(path); err != nil {
		return nil, err
	} else if format == formatSegmented {
		return readSegmented(path, nil)
	} else if format == FormatBinary {
		return readBinaryFile(path)
	} else if emptyBinaryArtifact(path) {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var dst []Row
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		const approxRowBytes = 100
		dst = make([]Row, 0, st.Size()/approxRowBytes+1)
	}
	return readInto(bufio.NewReaderSize(f, 1<<16), dst)
}

// WriteRowsAtomic writes a complete tidy-data log to path atomically: the
// log is rendered to a temp file in path's directory and renamed into place
// on success, so a crash mid-write never leaves a torn log where a complete
// one (or nothing) should be. The format follows the path extension; for
// CSV the bytes are identical to Create+WriteAll.
func WriteRowsAtomic(path string, rows []Row) error {
	return WriteRowsAtomicFormat(path, rows, FormatAuto)
}

// WriteRowsAtomicFormat is WriteRowsAtomic with an explicit format.
func WriteRowsAtomicFormat(path string, rows []Row, format Format) error {
	if (Options{Format: format}).resolve(path) == FormatBinary {
		return writeRowsAtomicBinary(path, rows)
	}
	f, err := fsx.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		w.Close()
		f.Abort()
		return err
	}
	if err := w.Close(); err != nil { // flush the csv buffer into the temp file
		f.Abort()
		return err
	}
	return f.Close() // sync + atomic rename into place
}

// scanResult describes the on-disk state of a log examined by scanLog.
type scanResult struct {
	// rows is the number of complete, parseable data rows.
	rows int
	// end is the byte offset just past the last complete row (or the
	// header); everything after it is a torn tail from an interrupted write.
	end int64
	// torn reports whether bytes past end were found.
	torn bool
	// lastRun is the run index of the final complete row (0 when empty).
	lastRun int
	// runStart is the byte offset where the rows of lastRun's run index
	// begin — the truncation point that drops the final (possibly
	// incomplete) run.
	runStart int64
	// runStartRows is the row count up to runStart.
	runStartRows int
}

// scanLog streams a log file, validating the header and every row, and
// locates the crash-consistent truncation points. A partial trailing line
// (no terminating newline, or an unparsable final line — the signature of a
// process killed mid-flush) is reported as a torn tail; an unparsable line
// in the interior is a hard corruption error. The scan is line-based, which
// is sound for SHARP logs: the Writer never emits a field containing a raw
// newline (error messages are sanitized before logging).
func scanLog(r io.Reader) (scanResult, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var res scanResult
	var off int64
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if line == "" && err == io.EOF {
			return res, nil
		}
		if err != nil && err != io.EOF {
			return res, fmt.Errorf("record: %w", err)
		}
		complete := strings.HasSuffix(line, "\n")
		start := off
		off += int64(len(line))
		lineNo++
		if lineNo == 1 {
			if !complete {
				// A torn header means no complete row survived; there is
				// nothing to continue from.
				return res, fmt.Errorf("record: missing header")
			}
			rec, perr := parseLine(line)
			if perr != nil || validateHeader(rec) != nil {
				return res, fmt.Errorf("record: unexpected header %v", strings.TrimSuffix(line, "\n"))
			}
			res.end = off
			res.runStart = off
			continue
		}
		row, perr := func() (Row, error) {
			rec, perr := parseLine(line)
			if perr != nil {
				return Row{}, perr
			}
			return parseRow(rec)
		}()
		if perr != nil || !complete {
			if err == io.EOF {
				// Torn tail: the final line is incomplete or unparsable —
				// exactly what a crash mid-write leaves behind.
				res.torn = true
				return res, nil
			}
			if perr == nil {
				perr = errors.New("incomplete line")
			}
			return res, fmt.Errorf("record: corrupt row at line %d: %v", lineNo, perr)
		}
		if row.Run != res.lastRun {
			res.lastRun = row.Run
			res.runStart = start
			res.runStartRows = res.rows
		}
		res.rows++
		res.end = off
		if err == io.EOF {
			return res, nil
		}
	}
}

// parseLine parses a single CSV line into fields.
func parseLine(line string) ([]string, error) {
	cr := csv.NewReader(strings.NewReader(line))
	rec, err := cr.Read()
	if err != nil {
		return nil, err
	}
	// A line with trailing garbage after a closing quote etc. yields a
	// second record; reject it.
	if _, err := cr.Read(); err != io.EOF {
		return nil, errors.New("trailing data")
	}
	return rec, nil
}

// ScanFile examines a log file without modifying it, returning the number
// of complete rows, the run index of the last complete row, and whether a
// torn tail (crash signature) is present.
func ScanFile(path string) (rows, lastRun int, torn bool, err error) {
	if format, err := sniffRead(path); err != nil {
		return 0, 0, false, err
	} else if format == formatSegmented {
		return scanSegmented(path)
	} else if format == FormatBinary {
		return scanBinaryFile(path)
	} else if emptyBinaryArtifact(path) {
		return 0, 0, false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	res, err := scanLog(f)
	if err != nil {
		return 0, 0, false, err
	}
	return res.rows, res.lastRun, res.torn, nil
}

// OpenAppend opens an existing log for continuation: it validates that the
// file starts with the current Header, truncates any torn trailing line
// left by a crash, positions the writer at the end, and returns the number
// of complete rows already on disk. Appending to a legacy pre-resilience
// log is refused (its rows have a different column count).
func OpenAppend(path string, o Options) (w *Writer, rows int, err error) {
	format, err := sniffFormat(path)
	if errors.Is(err, errSniffShort) && o.resolve(path) == FormatBinary {
		// A crash before the first flush leaves a 0-byte (or sub-magic) file:
		// no rows were ever durable, so "repair" is starting over. Without
		// this, a binary-format campaign could never resume past a crash that
		// beat the first buffer flush.
		if st, serr := os.Stat(path); serr == nil && st.Size() == 0 {
			w, cerr := CreateDurable(path, o)
			return w, 0, cerr
		}
	}
	if err != nil && !errors.Is(err, errSniffShort) {
		return nil, 0, err
	}
	if format == formatSegmented {
		return openAppendSegmented(path, o)
	}
	if format == FormatBinary {
		// A plain single-file binary log is continued as-is even when
		// SegmentRows is set: segmentation applies to logs created segmented.
		return openAppendBinary(path, o)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	res, err := scanLog(f)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	// Re-check the header width: scanLog accepts the legacy prefix for
	// reading, but appending 14-column rows under an 11-column header would
	// produce a log no reader accepts.
	if err := checkAppendHeader(f); err != nil {
		f.Close()
		return nil, 0, err
	}
	if res.torn {
		if err := f.Truncate(res.end); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("record: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(res.end, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	return &Writer{
		w: csv.NewWriter(f), c: f, f: f, opts: o,
		wroteHeader: true, rows: res.rows,
	}, res.rows, nil
}

// checkAppendHeader verifies the file's header has the current column count
// (seeking from the start; the caller restores the offset afterwards).
func checkAppendHeader(f *os.File) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReader(f)
	line, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return fmt.Errorf("record: %w", err)
	}
	rec, perr := parseLine(line)
	if perr != nil {
		return fmt.Errorf("record: unexpected header %v", strings.TrimSuffix(line, "\n"))
	}
	if len(rec) != len(Header) {
		return fmt.Errorf("record: cannot append to legacy %d-column log (current header has %d columns)", len(rec), len(Header))
	}
	return nil
}

// TruncateTrailingRun truncates the log at path so that the final run's
// rows — which may be incomplete if the process died mid-run — are removed
// along with any torn trailing line. It returns the remaining row count and
// the run index that was dropped (0 if the log had no data rows). This is
// the hard-crash recovery primitive: without a checkpoint marker there is
// no way to know whether the last run's row block is complete, so resume
// re-executes it from its backend draws instead.
func TruncateTrailingRun(path string) (rows, droppedRun int, err error) {
	if format, err := sniffRead(path); err != nil {
		return 0, 0, err
	} else if format == formatSegmented {
		return truncateTrailingRunSegmented(path)
	} else if format == FormatBinary {
		return truncateTrailingRunBinary(path)
	} else if emptyBinaryArtifact(path) {
		return 0, 0, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	res, err := scanLog(f)
	if err != nil {
		return 0, 0, err
	}
	if res.lastRun == 0 {
		if res.torn {
			if err := f.Truncate(res.end); err != nil {
				return 0, 0, err
			}
		}
		return res.rows, 0, nil
	}
	if err := f.Truncate(res.runStart); err != nil {
		return 0, 0, err
	}
	return res.runStartRows, res.lastRun, nil
}

// TruncateRows truncates the log at path to exactly its first n complete
// rows (plus header). It is used when a checkpoint records how many rows
// were durably part of the campaign: anything past them is discarded before
// the campaign continues. n larger than the available rows is an error.
func TruncateRows(path string, n int) error {
	if format, err := sniffRead(path); err != nil {
		return err
	} else if format == formatSegmented {
		return truncateRowsSegmented(path, n)
	} else if format == FormatBinary {
		return truncateRowsBinary(path, n)
	} else if emptyBinaryArtifact(path) {
		if n == 0 {
			return nil
		}
		return fmt.Errorf("record: truncate to %d rows: only 0 available", n)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	rows := -1 // header is line 0
	for rows < n {
		line, err := br.ReadString('\n')
		if line == "" && err == io.EOF {
			return fmt.Errorf("record: truncate to %d rows: only %d available", n, rows)
		}
		if err != nil && err != io.EOF {
			return fmt.Errorf("record: %w", err)
		}
		if !strings.HasSuffix(line, "\n") {
			return fmt.Errorf("record: truncate to %d rows: only %d available", n, rows)
		}
		off += int64(len(line))
		rows++
	}
	return f.Truncate(off)
}

// Filter returns the rows matching all non-zero criteria of the selector.
type Filter struct {
	Experiment, Workload, Backend, Machine, Metric string
	Day                                            int
}

// Select filters rows.
func Select(rows []Row, f Filter) []Row {
	var out []Row
	for _, r := range rows {
		if f.Experiment != "" && r.Experiment != f.Experiment {
			continue
		}
		if f.Workload != "" && r.Workload != f.Workload {
			continue
		}
		if f.Backend != "" && r.Backend != f.Backend {
			continue
		}
		if f.Machine != "" && r.Machine != f.Machine {
			continue
		}
		if f.Metric != "" && r.Metric != f.Metric {
			continue
		}
		if f.Day != 0 && r.Day != f.Day {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Values extracts the Value column of rows, in order.
func Values(rows []Row) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r.Value
	}
	return out
}

// GroupBy partitions rows by a key function, returning keys sorted.
func GroupBy(rows []Row, key func(Row) string) (keys []string, groups map[string][]Row) {
	groups = map[string][]Row{}
	for _, r := range rows {
		k := key(r)
		groups[k] = append(groups[k], r)
	}
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, groups
}
