package record

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

// FuzzParseMetadata checks the metadata Markdown parser never panics and
// that parse(render(parse(x))) is stable for accepted inputs.
func FuzzParseMetadata(f *testing.F) {
	var buf bytes.Buffer
	m := NewMetadata("seedexp", mockSUT())
	m.Set("seed", 42).Set("rule", "ks-0.1")
	m.Notes = "some notes\nwith two lines"
	m.WriteTo(&buf)
	f.Add(buf.String())
	f.Add("# SHARP experiment record: x\n\n## Parameters\n\n- `a`: 1\n")
	f.Add("# SHARP experiment record: \n")
	f.Add("random text\n- `key`: value\n")
	f.Add("# SHARP experiment record: y\n## System Under Test\n- `cpu_cores`: NaN\n")

	f.Fuzz(func(t *testing.T, s string) {
		m1, err := ParseMetadata(strings.NewReader(s))
		if err != nil {
			return
		}
		// Round trip: re-render and re-parse; structured fields must agree.
		var out bytes.Buffer
		if _, err := m1.WriteTo(&out); err != nil {
			t.Fatalf("render failed on accepted input: %v", err)
		}
		m2, err := ParseMetadata(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if m2.Experiment != m1.Experiment {
			t.Fatalf("experiment drifted: %q -> %q", m1.Experiment, m2.Experiment)
		}
		for k, v := range m1.Params {
			if m2.Params[k] != v {
				t.Fatalf("param %q drifted: %q -> %q", k, v, m2.Params[k])
			}
		}
		if m2.SUT != m1.SUT {
			t.Fatalf("SUT drifted: %+v -> %+v", m1.SUT, m2.SUT)
		}
	})
}

// FuzzScanBinary feeds arbitrary block streams to the binary scanner: it
// must never panic, and whatever prefix it accepts must decode (scan-ok
// implies read-ok, with matching row counts) and survive an encode/decode
// round trip.
func FuzzScanBinary(f *testing.F) {
	seed := func(rows []Row) []byte {
		dir := f.TempDir()
		path := dir + "/seed.sharpb"
		if err := writeRowsAtomicBinary(path, rows); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(nil))
	f.Add(seed(sampleRows(5)))
	multi := sampleRows(12)
	multi[3].Status, multi[3].Error = StatusError, "boom"
	f.Add(seed(multi))
	f.Add([]byte(binMagic))
	f.Add([]byte(binMagic + "\x02\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Force the binary path regardless of what the mutator did to the
		// leading bytes: the scanner must be total over arbitrary block
		// streams after the magic.
		stream := append([]byte(binMagic), data...)
		sc, rows, err := scanBinary(bytes.NewReader(stream), true)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if sc.rows != len(rows) {
			t.Fatalf("scan says %d rows, decoded %d", sc.rows, len(rows))
		}
		if sc.dataEnd > int64(len(stream)) {
			t.Fatalf("dataEnd %d beyond stream length %d", sc.dataEnd, len(stream))
		}
		// The accepted prefix must re-scan clean (untorn) when cut at
		// dataEnd, with identical bookkeeping.
		sc2, rows2, err := scanBinary(bytes.NewReader(stream[:sc.dataEnd]), true)
		if err != nil || sc2.torn {
			t.Fatalf("accepted prefix rejected on re-scan: torn=%v err=%v", sc2.torn, err)
		}
		if sc2.rows != sc.rows || sc2.lastRun != sc.lastRun || sc2.runStartRows != sc.runStartRows {
			t.Fatalf("re-scan bookkeeping drifted: %+v vs %+v", sc2, sc)
		}
		for i := range rows {
			if !rows[i].Timestamp.Equal(rows2[i].Timestamp) || rows[i].Value != rows2[i].Value && !(math.IsNaN(rows[i].Value) && math.IsNaN(rows2[i].Value)) {
				t.Fatalf("row %d drifted on re-scan", i)
			}
		}
		// Decoded rows within int32 field range must re-encode and decode
		// to the same values.
		for i := range rows {
			if err := checkRowRange(rows[i]); err != nil {
				t.Fatalf("scanner accepted out-of-range row: %v", err)
			}
		}
	})
}

// FuzzScanManifest checks the segment-manifest parser is total over
// arbitrary bytes and that accepted manifests re-encode byte-identically and
// re-parse to the same structure. A manifest the parser accepts drives
// segment-file deletion during truncation, so acceptance must imply sane,
// stable bookkeeping.
func FuzzScanManifest(f *testing.F) {
	f.Add(encodeManifest(&segManifest{segRows: 1 << 20}))
	f.Add(encodeManifest(&segManifest{segRows: 64, entries: []segEntry{
		{rows: 10, lastRun: 4, runStart: 8, bytes: 900},
		{rows: 12, lastRun: 9, runStart: 10, bytes: 1100},
	}}))
	f.Add([]byte(segMagic))
	f.Add([]byte(segMagic + "\x00\x00\x00\x00\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		for i, e := range m.entries {
			if e.rows < 0 || e.runStart < 0 || e.bytes < int64(len(binMagic)) {
				t.Fatalf("accepted implausible entry %d: %+v", i, e)
			}
		}
		enc := encodeManifest(m)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted manifest did not re-encode byte-identically (%d vs %d bytes)", len(enc), len(data))
		}
		m2, err := parseManifest(enc)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if m2.segRows != m.segRows || len(m2.entries) != len(m.entries) {
			t.Fatalf("re-parse drifted: %+v vs %+v", m2, m)
		}
	})
}

// FuzzCSVRows checks the tidy-row parser is total over arbitrary CSV bodies.
func FuzzCSVRows(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteAll(sampleRows(3))
	w.Close()
	f.Add(buf.String())
	f.Add("timestamp,experiment,workload,backend,machine,day,run,instance,metric,value,unit\n")
	f.Add("not,a,header\n1,2,3\n")
	f.Fuzz(func(t *testing.T, s string) {
		rows, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		// Accepted rows must re-serialize and re-parse identically.
		var out bytes.Buffer
		w := NewWriter(&out)
		if err := w.WriteAll(rows); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if len(again) != len(rows) {
			t.Fatalf("row count drifted: %d -> %d", len(rows), len(again))
		}
	})
}
