package record

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseMetadata checks the metadata Markdown parser never panics and
// that parse(render(parse(x))) is stable for accepted inputs.
func FuzzParseMetadata(f *testing.F) {
	var buf bytes.Buffer
	m := NewMetadata("seedexp", mockSUT())
	m.Set("seed", 42).Set("rule", "ks-0.1")
	m.Notes = "some notes\nwith two lines"
	m.WriteTo(&buf)
	f.Add(buf.String())
	f.Add("# SHARP experiment record: x\n\n## Parameters\n\n- `a`: 1\n")
	f.Add("# SHARP experiment record: \n")
	f.Add("random text\n- `key`: value\n")
	f.Add("# SHARP experiment record: y\n## System Under Test\n- `cpu_cores`: NaN\n")

	f.Fuzz(func(t *testing.T, s string) {
		m1, err := ParseMetadata(strings.NewReader(s))
		if err != nil {
			return
		}
		// Round trip: re-render and re-parse; structured fields must agree.
		var out bytes.Buffer
		if _, err := m1.WriteTo(&out); err != nil {
			t.Fatalf("render failed on accepted input: %v", err)
		}
		m2, err := ParseMetadata(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if m2.Experiment != m1.Experiment {
			t.Fatalf("experiment drifted: %q -> %q", m1.Experiment, m2.Experiment)
		}
		for k, v := range m1.Params {
			if m2.Params[k] != v {
				t.Fatalf("param %q drifted: %q -> %q", k, v, m2.Params[k])
			}
		}
		if m2.SUT != m1.SUT {
			t.Fatalf("SUT drifted: %+v -> %+v", m1.SUT, m2.SUT)
		}
	})
}

// FuzzCSVRows checks the tidy-row parser is total over arbitrary CSV bodies.
func FuzzCSVRows(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteAll(sampleRows(3))
	w.Close()
	f.Add(buf.String())
	f.Add("timestamp,experiment,workload,backend,machine,day,run,instance,metric,value,unit\n")
	f.Add("not,a,header\n1,2,3\n")
	f.Fuzz(func(t *testing.T, s string) {
		rows, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		// Accepted rows must re-serialize and re-parse identically.
		var out bytes.Buffer
		w := NewWriter(&out)
		if err := w.WriteAll(rows); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if len(again) != len(rows) {
			t.Fatalf("row count drifted: %d -> %d", len(rows), len(again))
		}
	})
}
