//go:build unix

package record

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform has a real mmap; without it
// every mapped-read entry point falls back to the streaming scanner.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The returned release func must be
// called exactly once; the mapping is invalid afterwards.
func mmapFile(f *os.File, size int64) ([]byte, func(), error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
