package record

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sharp/internal/fsx"
	"sharp/internal/sysinfo"
)

// Metadata is the experiment description written alongside each CSV log.
// The file is Markdown — readable by humans — but structured enough that
// ParseMetadata recovers every parameter, which is how SHARP recreates a
// previous experiment from its own records (§IV-d).
type Metadata struct {
	// Experiment is the experiment identifier.
	Experiment string
	// Created is the generation time (UTC).
	Created time.Time
	// Version identifies the SHARP build that produced the record.
	Version string
	// Params holds every launcher/stopping/workload parameter needed to
	// recreate the run (seed, rule, thresholds, workload arguments, ...).
	Params map[string]string
	// SUT describes the system under test.
	SUT sysinfo.SUT
	// Notes is free-form commentary (not machine-interpreted).
	Notes string
}

// Version is the SHARP (Go reproduction) version stamped into records; it
// stands in for the paper's "current git hash of SHARP's own code".
const Version = "sharp-go/1.0.0"

// NewMetadata returns a Metadata with the mandatory fields set.
func NewMetadata(experiment string, sut sysinfo.SUT) *Metadata {
	return &Metadata{
		Experiment: experiment,
		Created:    time.Now().UTC(),
		Version:    Version,
		Params:     map[string]string{},
		SUT:        sut,
	}
}

// Set records a parameter, formatting the value with %v.
func (m *Metadata) Set(key string, value any) *Metadata {
	m.Params[key] = fmt.Sprintf("%v", value)
	return m
}

// Get returns a parameter value ("" if absent).
func (m *Metadata) Get(key string) string { return m.Params[key] }

// WriteTo renders the metadata file as Markdown. Machine-readable entries
// use "- `key`: value" bullets inside well-known sections.
func (m *Metadata) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# SHARP experiment record: %s\n\n", m.Experiment)
	fmt.Fprintf(&b, "This file describes one SHARP experiment. It is both documentation and\n")
	fmt.Fprintf(&b, "input: `sharp recreate <this file>` re-runs the experiment with the same\n")
	fmt.Fprintf(&b, "parameters.\n\n")
	fmt.Fprintf(&b, "## Record\n\n")
	fmt.Fprintf(&b, "- `experiment`: %s\n", m.Experiment)
	fmt.Fprintf(&b, "- `created`: %s\n", m.Created.UTC().Format(time.RFC3339))
	fmt.Fprintf(&b, "- `version`: %s\n", m.Version)
	fmt.Fprintf(&b, "\n## Parameters\n\n")
	keys := make([]string, 0, len(m.Params))
	for k := range m.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "- `%s`: %s\n", k, m.Params[k])
	}
	fmt.Fprintf(&b, "\n## System Under Test\n\n")
	for _, kv := range m.SUT.Fields() {
		fmt.Fprintf(&b, "- `%s`: %s\n", kv[0], kv[1])
	}
	fmt.Fprintf(&b, "\n## Data fields\n\n")
	fmt.Fprintf(&b, "Each row of the accompanying CSV is one metric observation (tidy data;\n")
	fmt.Fprintf(&b, "concurrent instances get separate rows).\n\n")
	fmt.Fprintf(&b, "| column | description |\n|---|---|\n")
	for _, col := range Header {
		fmt.Fprintf(&b, "| %s | %s |\n", col, FieldDocs[col])
	}
	if m.Notes != "" {
		fmt.Fprintf(&b, "\n## Notes\n\n%s\n", m.Notes)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteFile writes the metadata file at path atomically (temp file +
// rename): an interrupted write leaves the previous metadata intact instead
// of a torn, unparsable record.
func (m *Metadata) WriteFile(path string) error {
	return fsx.WriteTo(path, 0o644, func(w io.Writer) error {
		_, err := m.WriteTo(w)
		return err
	})
}

// Checkpoint parameter keys. A checkpoint line marks a cleanly interrupted
// campaign: checkpoint_run is the last fully recorded run index and
// checkpoint_rows the number of CSV rows belonging to it, so resume can
// trust the log up to exactly that row and continue at the next run.
const (
	ParamCheckpointRun  = "checkpoint_run"
	ParamCheckpointRows = "checkpoint_rows"
)

// SetCheckpoint records the interrupt checkpoint (last completed run and
// its cumulative row count) in the metadata parameters.
func (m *Metadata) SetCheckpoint(run, rows int) {
	m.Set(ParamCheckpointRun, run)
	m.Set(ParamCheckpointRows, rows)
}

// ClearCheckpoint removes the checkpoint marker (set again only if the
// resumed campaign is itself interrupted).
func (m *Metadata) ClearCheckpoint() {
	delete(m.Params, ParamCheckpointRun)
	delete(m.Params, ParamCheckpointRows)
}

// Checkpoint returns the interrupt checkpoint, if one is recorded.
func (m *Metadata) Checkpoint() (run, rows int, ok bool) {
	r, err1 := strconv.Atoi(m.Get(ParamCheckpointRun))
	n, err2 := strconv.Atoi(m.Get(ParamCheckpointRows))
	if err1 != nil || err2 != nil || r < 0 || n < 0 {
		return 0, 0, false
	}
	return r, n, true
}

// ParseMetadata reads a metadata Markdown file back into a Metadata.
// Unrecognized content is ignored; only the structured bullets in the
// Record, Parameters, and System Under Test sections are interpreted.
func ParseMetadata(r io.Reader) (*Metadata, error) {
	m := &Metadata{Params: map[string]string{}}
	sut := map[string]string{}
	section := ""
	sc := bufio.NewScanner(r)
	var notes []string
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		switch {
		case strings.HasPrefix(line, "## "):
			section = strings.TrimSpace(strings.TrimPrefix(line, "## "))
			continue
		case strings.HasPrefix(line, "# SHARP experiment record: "):
			m.Experiment = strings.TrimSpace(strings.TrimPrefix(line, "# SHARP experiment record: "))
			continue
		}
		if section == "Notes" {
			notes = append(notes, line)
			continue
		}
		key, val, ok := parseBullet(line)
		if !ok {
			continue
		}
		switch section {
		case "Record":
			switch key {
			case "experiment":
				m.Experiment = val
			case "created":
				if t, err := time.Parse(time.RFC3339, val); err == nil {
					m.Created = t
				}
			case "version":
				m.Version = val
			}
		case "Parameters":
			m.Params[key] = val
		case "System Under Test":
			sut[key] = val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	if m.Experiment == "" {
		return nil, fmt.Errorf("record: not a SHARP metadata file (missing experiment header)")
	}
	m.SUT = sysinfo.FromFields(sut)
	m.Notes = strings.TrimSpace(strings.Join(notes, "\n"))
	return m, nil
}

// ParseMetadataFile reads a metadata file from disk.
func ParseMetadataFile(path string) (*Metadata, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseMetadata(f)
}

// parseBullet extracts key/value from a "- `key`: value" line.
func parseBullet(line string) (key, val string, ok bool) {
	s := strings.TrimSpace(line)
	if !strings.HasPrefix(s, "- `") {
		return "", "", false
	}
	s = strings.TrimPrefix(s, "- `")
	end := strings.Index(s, "`")
	if end < 0 {
		return "", "", false
	}
	key = s[:end]
	rest := strings.TrimSpace(s[end+1:])
	if !strings.HasPrefix(rest, ":") {
		return "", "", false
	}
	return key, strings.TrimSpace(rest[1:]), true
}
