package record

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sharp/internal/sysinfo"
)

func sampleRows(n int) []Row {
	rows := make([]Row, n)
	base := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	for i := range rows {
		rows[i] = Row{
			Timestamp:  base.Add(time.Duration(i) * time.Second),
			Experiment: "fig6", Workload: "bfs-CUDA", Backend: "sim",
			Machine: "machine3", Day: 1 + i%5, Run: i + 1, Instance: 1,
			Metric: "exec_time", Value: 1.5 + float64(i)/100, Unit: "seconds",
		}
	}
	return rows
}

func TestCSVRoundTrip(t *testing.T) {
	rows := sampleRows(25)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(rows); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows: got %d want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("row %d: got %+v want %+v", i, got[i], rows[i])
		}
	}
}

func TestEmptyLogHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "timestamp,experiment") {
		t.Fatalf("no header in empty log: %q", buf.String())
	}
	rows, err := Read(&buf)
	if err != nil || len(rows) != 0 {
		t.Fatalf("read empty: %v, %v", rows, err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("bad header accepted")
	}
	bad := "timestamp,experiment,workload,backend,machine,day,run,instance,metric,value,unit\n" +
		"not-a-time,e,w,b,m,1,1,1,x,1.0,s\n"
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.csv")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := sampleRows(10)
	if err := w.WriteAll(rows); err != nil {
		t.Fatal(err)
	}
	if w.Rows() != 10 {
		t.Fatalf("Rows() = %d", w.Rows())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || len(got) != 10 {
		t.Fatalf("read file: %d rows, %v", len(got), err)
	}
}

func TestSelectAndValues(t *testing.T) {
	rows := sampleRows(20)
	day2 := Select(rows, Filter{Day: 2, Metric: "exec_time"})
	for _, r := range day2 {
		if r.Day != 2 {
			t.Fatalf("filter leaked day %d", r.Day)
		}
	}
	if len(day2) != 4 {
		t.Fatalf("day2 rows = %d, want 4", len(day2))
	}
	vals := Values(day2)
	if len(vals) != len(day2) {
		t.Fatal("values length mismatch")
	}
	if none := Select(rows, Filter{Workload: "nope"}); len(none) != 0 {
		t.Fatal("filter matched nonexistent workload")
	}
}

func TestGroupBy(t *testing.T) {
	rows := sampleRows(20)
	keys, groups := GroupBy(rows, func(r Row) string { return "day" + string(rune('0'+r.Day)) })
	if len(keys) != 5 {
		t.Fatalf("keys = %v", keys)
	}
	total := 0
	for _, k := range keys {
		total += len(groups[k])
	}
	if total != 20 {
		t.Fatalf("groups lost rows: %d", total)
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	sut := sysinfo.SUT{
		Hostname: "machine3", OS: "linux", Kernel: "Linux 5.15.0-116-generic",
		Arch: "amd64", CPUModel: "Intel(R) Xeon(R) Platinum 8468V", CPUCores: 96,
		MemoryMB: 1048576, GPUModel: "Nvidia H100 80GB", GoVersion: "go1.22",
		Simulated: true,
	}
	m := NewMetadata("fig6", sut)
	m.Set("seed", 42).Set("rule", "ks").Set("threshold", 0.1).Set("workloads", "bfs,srad")
	m.Notes = "Stopping-rule comparison on Machine 3."

	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMetadata(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "fig6" {
		t.Errorf("experiment = %q", got.Experiment)
	}
	if got.Version != Version {
		t.Errorf("version = %q", got.Version)
	}
	for k, v := range m.Params {
		if got.Params[k] != v {
			t.Errorf("param %s = %q, want %q", k, got.Params[k], v)
		}
	}
	if got.SUT != sut {
		t.Errorf("SUT = %+v\nwant %+v", got.SUT, sut)
	}
	if got.Notes != m.Notes {
		t.Errorf("notes = %q", got.Notes)
	}
}

func TestMetadataFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.md")
	m := NewMetadata("quickstart", sysinfo.Collect())
	m.Set("seed", 1)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMetadataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "quickstart" || got.Get("seed") != "1" {
		t.Errorf("round trip lost data: %+v", got)
	}
}

func TestParseMetadataRejectsNonRecord(t *testing.T) {
	if _, err := ParseMetadata(strings.NewReader("# some other file\n")); err == nil {
		t.Error("non-record accepted")
	}
}

func TestMetadataIsReadableMarkdown(t *testing.T) {
	m := NewMetadata("fig4", sysinfo.SUT{Hostname: "m1"})
	var buf bytes.Buffer
	m.WriteTo(&buf)
	out := buf.String()
	for _, want := range []string{"## Parameters", "## System Under Test", "## Data fields", "| timestamp |"} {
		if !strings.Contains(out, want) {
			t.Errorf("metadata missing %q", want)
		}
	}
}

func TestSysinfoCollect(t *testing.T) {
	s := sysinfo.Collect()
	if s.CPUCores < 1 {
		t.Error("no cores detected")
	}
	if s.GoVersion == "" {
		t.Error("no Go version")
	}
	if s.String() == "" {
		t.Error("empty description")
	}
	round := sysinfo.FromFields(fieldsToMap(s.Fields()))
	if round != s {
		t.Errorf("sysinfo fields round trip: %+v != %+v", round, s)
	}
}

func fieldsToMap(fields [][2]string) map[string]string {
	m := map[string]string{}
	for _, kv := range fields {
		m[kv[0]] = kv[1]
	}
	return m
}

// mockSUT builds a deterministic SUT for fuzz seeds.
func mockSUT() sysinfo.SUT {
	return sysinfo.SUT{
		Hostname: "m", OS: "linux", Kernel: "k", Arch: "amd64",
		CPUModel: "cpu", CPUCores: 4, MemoryMB: 8192, GoVersion: "go1.22",
	}
}
