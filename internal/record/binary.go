// Binary columnar log format (".sharpb"). The CSV log pays per-row strconv
// formatting across 14 text columns and O(rows) re-parsing on every resume;
// the binary format stores the same tidy rows as fixed-width column blocks
// with per-block CRC-32 checksums, a file-wide string dictionary, and an
// atomic sidecar index, so recording is a memcpy-shaped encode and a clean
// resume locates its truncation point with one index read instead of a full
// parse. The format lives entirely behind the existing Writer / ScanFile /
// OpenAppend / TruncateRows / TruncateTrailingRun / ReadFile surfaces: the
// crash-repair semantics (torn tail vs interior corruption) mirror the CSV
// scanner exactly, so core.Launcher, Resume, and sharp-serve work unchanged.
//
// On-disk layout (all integers little-endian; see DESIGN.md §12):
//
//	file   := magic "SHARPB1\n" block*
//	block  := frame payload
//	frame  := kind u8 | rows u32 | firstRun i32 | lastRun i32 |
//	          payloadLen u32 | crc u32          (21 bytes)
//	crc    := CRC-32 (IEEE) over frame[0:17] ++ payload
//
// A dict block (kind 0x01) introduces new strings — payload is a sequence of
// (len u32, bytes) entries; ids are assigned file-wide in order of first
// appearance, and every dict block precedes the first data block that
// references its entries. A data block (kind 0x02) holds n rows as columns:
// sec i64, nsec u32, day i32, run i32, instance i32, attempt i32, value
// (float64 bits) u64, then eight u32 dictionary-id columns (experiment,
// workload, backend, machine, metric, unit, status, error) — 68 bytes/row.
//
// The sidecar "<path>.idx" caches the scan result (row count, last run, run
// start, data end) and is written atomically on Close. It is advisory: a
// freshness check (file size == dataEnd and a CRC over the file's tail)
// detects staleness after a crash, in which case readers fall back to the
// full validating scan.
package record

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sharp/internal/fsx"
)

// Format selects the on-disk log encoding.
type Format int

const (
	// FormatAuto picks the format from the path extension: ".sharpb" is
	// binary, everything else CSV.
	FormatAuto Format = iota
	// FormatCSV is the tidy-data CSV log (the historical format).
	FormatCSV
	// FormatBinary is the columnar ".sharpb" log.
	FormatBinary
)

// BinaryExt is the file extension of binary columnar logs.
const BinaryExt = ".sharpb"

// formatSegmented marks a segmented binary log: a "SHARPSG1" manifest at the
// log path next to a <path>.seg/ directory of self-contained .sharpb
// segments. It is internal — callers opt in through Options.SegmentRows and
// readers detect it by sniffing, never via the Format flag.
const formatSegmented Format = -1

// ParseFormat parses a --format flag value.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return FormatAuto, nil
	case "csv":
		return FormatCSV, nil
	case "binary", "sharpb", "bin":
		return FormatBinary, nil
	}
	return FormatAuto, fmt.Errorf("record: unknown format %q (want csv or binary)", s)
}

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "csv"
	case FormatBinary:
		return "binary"
	}
	return "auto"
}

// FormatForPath resolves FormatAuto by extension.
func FormatForPath(path string) Format {
	if strings.EqualFold(filepath.Ext(path), BinaryExt) {
		return FormatBinary
	}
	return FormatCSV
}

// resolve picks the concrete format for a log created at path.
func (o Options) resolve(path string) Format {
	if o.Format != FormatAuto {
		return o.Format
	}
	return FormatForPath(path)
}

// Wire-format constants.
const (
	binMagic      = "SHARPB1\n" // 8 bytes
	binIndexMagic = "SHARPIX1"  // 8 bytes
	binFrameLen   = 21          // kind + rows + firstRun + lastRun + payloadLen + crc
	binRowBytes   = 68          // per-row bytes in a data-block payload
	binKindDict   = 0x01
	binKindData   = 0x02
	// binBlockRows caps rows per data block so a block payload stays cache-
	// friendly (~272 KiB) and a mid-file seek never decodes more than one
	// block past its target.
	binBlockRows = 4096
	// binMaxPayload is the structural sanity cap on a declared payload
	// length; a frame claiming more is corruption, not data.
	binMaxPayload = 64 << 20
	// binIndexTail is how many trailing data-file bytes the sidecar index
	// checksums to detect staleness.
	binIndexTail = 4096
	// binIndexSuffix is appended to the log path to name its sidecar index.
	binIndexSuffix = ".idx"
)

var binCRC = crc32.MakeTable(crc32.IEEE)

// binStringCols lists the dictionary-encoded columns in payload order.
func (r *Row) binStrings() [8]string {
	return [8]string{r.Experiment, r.Workload, r.Backend, r.Machine, r.Metric, r.Unit, r.Status, r.Error}
}

// errSniffShort reports a file too short to hold any format magic (including
// an empty file — the artifact a crash before the first buffer flush leaves
// behind). It is distinguishable from genuine I/O failure so OpenAppend can
// repair the empty-file case instead of hard-failing; every other caller
// falls through to the CSV path, keeping the historical error messages.
var errSniffShort = errors.New("record: file too short to sniff format")

// sniffFormat reports the format of an existing log file by its leading
// magic bytes. A damaged segmented manifest is still recognized by its
// sibling <path>.seg directory, so manifest corruption stays repairable.
func sniffFormat(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) && hasSegDir(path) {
			// The manifest itself is gone but its segment directory survives:
			// still a segmented log, rebuilt by scanning the segments.
			return formatSegmented, nil
		}
		return FormatCSV, err
	}
	defer f.Close()
	var b [len(binMagic)]byte
	n, err := io.ReadFull(f, b[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return FormatCSV, fmt.Errorf("record: %w", err)
	}
	switch {
	case n == len(binMagic) && string(b[:]) == binMagic:
		return FormatBinary, nil
	case n == len(segMagic) && string(b[:]) == segMagic:
		return formatSegmented, nil
	case hasSegDir(path):
		// The manifest bytes are damaged (torn, zeroed, or overwritten) but
		// the segment directory survives: still a segmented log, rebuilt by
		// scanning its segments.
		return formatSegmented, nil
	case n < len(binMagic):
		return FormatCSV, errSniffShort
	}
	return FormatCSV, nil
}

// sniffRead is sniffFormat for read-side callers, where a too-short file is
// simply not binary (the CSV reader produces the historical diagnostics).
func sniffRead(path string) (Format, error) {
	format, err := sniffFormat(path)
	if errors.Is(err, errSniffShort) {
		return format, nil
	}
	return format, err
}

// emptyBinaryArtifact reports whether path is a 0-byte file that resolves to
// a binary log by extension — the kill -9 window between creating a log and
// writing its magic. Read and repair surfaces treat it as an empty log (zero
// rows, nothing to truncate) and OpenAppend recreates it; a 0-byte CSV keeps
// the historical missing-header diagnostics, since a CSV header is data.
func emptyBinaryArtifact(path string) bool {
	if FormatForPath(path) != FormatBinary {
		return false
	}
	st, err := os.Stat(path)
	return err == nil && st.Size() == 0
}

// checkRowRange rejects rows whose integer fields cannot round-trip through
// the 32-bit on-disk columns (never produced by SHARP itself).
func checkRowRange(r Row) error {
	for _, v := range [...]int{r.Day, r.Run, r.Instance, r.Attempt} {
		if v < math.MinInt32 || v > math.MaxInt32 {
			return fmt.Errorf("record: field value %d out of binary range", v)
		}
	}
	if ns := r.Timestamp.Nanosecond(); ns < 0 || ns >= 1e9 {
		return fmt.Errorf("record: bad timestamp nanoseconds %d", ns)
	}
	return nil
}

// binWriter appends rows to a binary columnar log. Rows are decomposed into
// per-column scratch buffers on add (one dictionary lookup per string,
// cached per column for the common same-as-last-row case) and serialized
// column by column on emit, so the hot path is sequential stores instead of
// per-row strided writes.
type binWriter struct {
	f    *os.File
	bw   *bufio.Writer
	dict map[string]uint32
	// fresh holds strings interned since the last dict block, in first-
	// appearance order.
	fresh []string
	// lastStr/lastID are a per-column four-entry lookup cache: campaign rows
	// draw most string columns from a handful of values (machines, metrics,
	// units) that repeat or cycle, and equal strings usually share backing,
	// making the compare O(1). Misses fall back to the dictionary map.
	lastStr [8][4]string
	lastID  [8][4]uint32
	lastPos [8]uint8
	// Columnar scratch for the pending block (n valid entries each).
	n    int
	sec  []int64
	nsec []uint32
	day  []int32
	run  []int32
	inst []int32
	att  []int32
	val  []uint64
	ids  []uint32 // 8 per row, row-major
	// payload is the reusable block serialization buffer.
	payload []byte
	// off is the file offset past the last emitted block (== file length
	// once bw is flushed).
	off int64
	// rows / lastRun / runStartRows mirror the CSV scan bookkeeping for the
	// emitted prefix; they feed the sidecar index on Close.
	rows         int
	lastRun      int
	runStartRows int
	sync         bool
}

// newBinWriterCore initializes the dictionary and block scratch around an
// output stream positioned just past the magic.
func newBinWriterCore(bw *bufio.Writer) *binWriter {
	w := &binWriter{
		bw: bw, dict: map[string]uint32{}, off: int64(len(binMagic)),
		sec:  make([]int64, binBlockRows),
		nsec: make([]uint32, binBlockRows),
		day:  make([]int32, binBlockRows),
		run:  make([]int32, binBlockRows),
		inst: make([]int32, binBlockRows),
		att:  make([]int32, binBlockRows),
		val:  make([]uint64, binBlockRows),
		ids:  make([]uint32, 8*binBlockRows),
	}
	for c := range w.lastStr {
		for k := range w.lastStr[c] {
			w.lastStr[c][k] = "\x00record:no-such-string" // never matches a real column value
		}
	}
	return w
}

// createBinary opens path for writing (truncating) as a binary log and
// writes the magic.
func createBinary(path string, o Options) (*binWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := newBinWriterCore(bufio.NewWriterSize(f, 1<<16))
	w.f, w.sync = f, o.Sync
	if _, err := w.bw.WriteString(binMagic); err != nil {
		f.Close()
		return nil, err
	}
	// A fresh log invalidates any index left over from a previous file at
	// the same path.
	os.Remove(path + binIndexSuffix)
	return w, nil
}

// intern returns the dictionary id for s, assigning the next id (and noting
// the string for the pending dict block) on first appearance.
func (w *binWriter) intern(s string) uint32 {
	id, ok := w.dict[s]
	if !ok {
		id = uint32(len(w.dict))
		w.dict[s] = id
		w.fresh = append(w.fresh, s)
	}
	return id
}

// lookup returns the dictionary id for column c holding s, consulting the
// four-entry per-column cache before the map.
func (w *binWriter) lookup(c int, s string) uint32 {
	cache := &w.lastStr[c]
	switch s {
	case cache[0]:
		return w.lastID[c][0]
	case cache[1]:
		return w.lastID[c][1]
	case cache[2]:
		return w.lastID[c][2]
	case cache[3]:
		return w.lastID[c][3]
	}
	id := w.intern(s)
	k := w.lastPos[c] & 3
	cache[k], w.lastID[c][k] = s, id
	w.lastPos[c]++
	return id
}

// add buffers one row, emitting a block when the cap is reached. The row is
// passed by pointer purely to keep the per-call copy off the hot path.
func (w *binWriter) add(r *Row) error {
	if r.Day != int(int32(r.Day)) || r.Run != int(int32(r.Run)) ||
		r.Instance != int(int32(r.Instance)) || r.Attempt != int(int32(r.Attempt)) {
		return fmt.Errorf("record: integer field out of binary range in row %+v", *r)
	}
	i := w.n
	// Unix() and Nanosecond() are location-independent; no UTC() needed.
	w.sec[i] = r.Timestamp.Unix()
	w.nsec[i] = uint32(r.Timestamp.Nanosecond())
	w.day[i] = int32(r.Day)
	w.run[i] = int32(r.Run)
	w.inst[i] = int32(r.Instance)
	w.att[i] = int32(r.Attempt)
	w.val[i] = math.Float64bits(r.Value)
	// Unrolled per-column lookups: building the [8]string column array first
	// would cost a 128-byte copy per row.
	ids := w.ids[8*i : 8*i+8 : 8*i+8]
	ids[0] = w.lookup(0, r.Experiment)
	ids[1] = w.lookup(1, r.Workload)
	ids[2] = w.lookup(2, r.Backend)
	ids[3] = w.lookup(3, r.Machine)
	ids[4] = w.lookup(4, r.Metric)
	ids[5] = w.lookup(5, r.Unit)
	ids[6] = w.lookup(6, r.Status)
	ids[7] = w.lookup(7, r.Error)
	w.n++
	if w.n >= binBlockRows {
		return w.emit()
	}
	return nil
}

// emit writes the pending rows as (optional dict block +) one data block.
// Each column is serialized with a tight sequential loop.
func (w *binWriter) emit() error {
	n := w.n
	if n == 0 {
		return nil
	}
	if len(w.fresh) > 0 {
		var dp []byte
		for _, s := range w.fresh {
			dp = binary.LittleEndian.AppendUint32(dp, uint32(len(s)))
			dp = append(dp, s...)
		}
		if err := w.writeBlock(binKindDict, len(w.fresh), 0, 0, dp); err != nil {
			return err
		}
		w.fresh = w.fresh[:0]
	}
	size := n * binRowBytes
	if cap(w.payload) < size {
		w.payload = make([]byte, size)
	}
	p := w.payload[:size]
	le := binary.LittleEndian
	for i := 0; i < n; i++ {
		le.PutUint64(p[8*i:], uint64(w.sec[i]))
	}
	putU32Col(p[8*n:12*n], w.nsec[:n])
	putI32Col(p[12*n:16*n], w.day[:n])
	putI32Col(p[16*n:20*n], w.run[:n])
	putI32Col(p[20*n:24*n], w.inst[:n])
	putI32Col(p[24*n:28*n], w.att[:n])
	for i := 0; i < n; i++ {
		le.PutUint64(p[28*n+8*i:], w.val[i])
	}
	for c := 0; c < 8; c++ {
		col := p[(36+4*c)*n : (40+4*c)*n]
		ids := w.ids[: 8*n : 8*n]
		for i := 0; i < n; i++ {
			le.PutUint32(col[4*i:], ids[8*i+c])
		}
	}
	if err := w.writeBlock(binKindData, n, int(w.run[0]), int(w.run[n-1]), p); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if r := int(w.run[i]); r != w.lastRun {
			w.lastRun = r
			w.runStartRows = w.rows
		}
		w.rows++
	}
	w.n = 0
	return nil
}

// putU32Col serializes a uint32 column little-endian into dst (len 4*n).
func putU32Col(dst []byte, col []uint32) {
	for i, v := range col {
		binary.LittleEndian.PutUint32(dst[4*i:], v)
	}
}

// putI32Col serializes an int32 column little-endian into dst (len 4*n).
func putI32Col(dst []byte, col []int32) {
	for i, v := range col {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

// writeBlock frames and writes one block.
func (w *binWriter) writeBlock(kind byte, rows, firstRun, lastRun int, payload []byte) error {
	var frame [binFrameLen]byte
	frame[0] = kind
	binary.LittleEndian.PutUint32(frame[1:], uint32(rows))
	binary.LittleEndian.PutUint32(frame[5:], uint32(int32(firstRun)))
	binary.LittleEndian.PutUint32(frame[9:], uint32(int32(lastRun)))
	binary.LittleEndian.PutUint32(frame[13:], uint32(len(payload)))
	crc := crc32.Update(crc32.Update(0, binCRC, frame[:17]), binCRC, payload)
	binary.LittleEndian.PutUint32(frame[17:], crc)
	if _, err := w.bw.Write(frame[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.off += int64(binFrameLen + len(payload))
	return nil
}

// flush emits the pending block and pushes it to the OS (and optionally to
// disk, per the Sync option).
func (w *binWriter) flush() error {
	if err := w.emit(); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

// close flushes, writes the sidecar index, and closes the file. The file is
// closed unconditionally; errors are joined.
func (w *binWriter) close() error {
	err := w.flush()
	if err == nil {
		err = writeBinIndex(w.f.Name(), w.f, w.rows, w.lastRun, w.runStartRows, w.off)
	}
	return errors.Join(err, w.f.Close())
}

// encodeDataBlock renders rows as a columnar payload using dict for the
// string columns (every string must already be interned).
func encodeDataBlock(rows []Row, dict map[string]uint32) []byte {
	n := len(rows)
	p := make([]byte, n*binRowBytes)
	le := binary.LittleEndian
	for i := range rows {
		r := &rows[i]
		ts := r.Timestamp.UTC()
		le.PutUint64(p[8*i:], uint64(ts.Unix()))
		le.PutUint32(p[8*n+4*i:], uint32(ts.Nanosecond()))
		le.PutUint32(p[12*n+4*i:], uint32(int32(r.Day)))
		le.PutUint32(p[16*n+4*i:], uint32(int32(r.Run)))
		le.PutUint32(p[20*n+4*i:], uint32(int32(r.Instance)))
		le.PutUint32(p[24*n+4*i:], uint32(int32(r.Attempt)))
		le.PutUint64(p[28*n+8*i:], math.Float64bits(r.Value))
		for c, s := range r.binStrings() {
			le.PutUint32(p[36*n+(4*c)*n+4*i:], dict[s])
		}
	}
	return p
}

// decodeDataBlock decodes a columnar payload of n rows, validating dict ids
// and nanosecond ranges (so a scan that accepts a block guarantees it also
// decodes), appending to dst. Decoding runs column by column: each pass
// streams sequentially through one column of the (cache-resident) payload
// and one field of the freshly appended rows.
func decodeDataBlock(payload []byte, n int, dict []string, dst []Row) ([]Row, error) {
	base := len(dst)
	if cap(dst)-base < n {
		grown := make([]Row, base, base+n+(base+n)/4)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+n]
	if err := decodeBlockInto(payload, n, dict, dst[base:base+n:base+n]); err != nil {
		return dst[:base], err
	}
	return dst, nil
}

// decodeBlockInto decodes a columnar payload of n rows into blk (len n),
// overwriting every field, so callers may hand it recycled Row storage. It
// is the shared core of the streaming scanner and the mmap fast path, which
// decodes blocks directly into disjoint windows of a preallocated slab.
func decodeBlockInto(payload []byte, n int, dict []string, blk []Row) error {
	le := binary.LittleEndian
	for i := range blk {
		nsec := le.Uint32(payload[8*n+4*i:])
		if nsec >= 1e9 {
			return fmt.Errorf("bad nanoseconds %d", nsec)
		}
		blk[i].Timestamp = time.Unix(int64(le.Uint64(payload[8*i:])), int64(nsec)).UTC()
	}
	for i := range blk {
		blk[i].Day = int(int32(le.Uint32(payload[12*n+4*i:])))
	}
	for i := range blk {
		blk[i].Run = int(int32(le.Uint32(payload[16*n+4*i:])))
	}
	for i := range blk {
		blk[i].Instance = int(int32(le.Uint32(payload[20*n+4*i:])))
	}
	for i := range blk {
		blk[i].Attempt = int(int32(le.Uint32(payload[24*n+4*i:])))
	}
	for i := range blk {
		blk[i].Value = math.Float64frombits(le.Uint64(payload[28*n+8*i:]))
	}
	// Each string column decodes in its own tight loop (a shared loop would
	// re-test the column selector per row); the id bounds branch is never
	// taken on valid input and predicts perfectly.
	nd := uint32(len(dict))
	col := payload[36*n : 40*n]
	for i := range blk {
		id := le.Uint32(col[4*i:])
		if id >= nd {
			return fmt.Errorf("dictionary id %d out of range (%d entries)", id, nd)
		}
		blk[i].Experiment = dict[id]
	}
	col = payload[40*n : 44*n]
	for i := range blk {
		id := le.Uint32(col[4*i:])
		if id >= nd {
			return fmt.Errorf("dictionary id %d out of range (%d entries)", id, nd)
		}
		blk[i].Workload = dict[id]
	}
	col = payload[44*n : 48*n]
	for i := range blk {
		id := le.Uint32(col[4*i:])
		if id >= nd {
			return fmt.Errorf("dictionary id %d out of range (%d entries)", id, nd)
		}
		blk[i].Backend = dict[id]
	}
	col = payload[48*n : 52*n]
	for i := range blk {
		id := le.Uint32(col[4*i:])
		if id >= nd {
			return fmt.Errorf("dictionary id %d out of range (%d entries)", id, nd)
		}
		blk[i].Machine = dict[id]
	}
	col = payload[52*n : 56*n]
	for i := range blk {
		id := le.Uint32(col[4*i:])
		if id >= nd {
			return fmt.Errorf("dictionary id %d out of range (%d entries)", id, nd)
		}
		blk[i].Metric = dict[id]
	}
	col = payload[56*n : 60*n]
	for i := range blk {
		id := le.Uint32(col[4*i:])
		if id >= nd {
			return fmt.Errorf("dictionary id %d out of range (%d entries)", id, nd)
		}
		blk[i].Unit = dict[id]
	}
	col = payload[60*n : 64*n]
	for i := range blk {
		id := le.Uint32(col[4*i:])
		if id >= nd {
			return fmt.Errorf("dictionary id %d out of range (%d entries)", id, nd)
		}
		blk[i].Status = dict[id]
	}
	col = payload[64*n : 68*n]
	for i := range blk {
		id := le.Uint32(col[4*i:])
		if id >= nd {
			return fmt.Errorf("dictionary id %d out of range (%d entries)", id, nd)
		}
		blk[i].Error = dict[id]
	}
	return nil
}

// binBlock records where a data block sits in the file.
type binBlock struct {
	off      int64 // frame start offset
	rows     int
	firstRow int // global row index of the block's first row
}

// binScan is the binary analogue of scanResult.
type binScan struct {
	rows         int
	lastRun      int
	runStartRows int
	dataEnd      int64 // offset past the last valid block
	torn         bool
	dict         []string
	blocks       []binBlock
}

// scanBinary streams a binary log, validating framing, checksums, and
// decodability of every block, and locates the crash-consistent truncation
// point. The torn/corrupt policy mirrors the CSV scanner: an incomplete or
// invalid final block (EOF reached, nothing after it) is a torn tail left by
// a crash and is repairable; an invalid block with data after it is hard
// corruption. When collect is true the decoded rows are returned.
func scanBinary(r io.Reader, collect bool) (binScan, []Row, error) {
	return scanBinaryImpl(r, nil, collect, nil)
}

// scanBinaryDst is scanBinary collecting into a caller-preallocated slice.
func scanBinaryDst(r io.Reader, dst []Row) (binScan, []Row, error) {
	return scanBinaryImpl(r, dst, true, nil)
}

// scanBinaryStream is scanBinary delivering each decoded block to sink
// instead of materializing the log; the batch slice is reused between calls.
func scanBinaryStream(r io.Reader, sink func([]Row) error) (binScan, error) {
	sc, _, err := scanBinaryImpl(r, nil, false, sink)
	return sc, err
}

func scanBinaryImpl(r io.Reader, dst []Row, collect bool, sink func([]Row) error) (binScan, []Row, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var sc binScan
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != binMagic {
		return sc, nil, errors.New("record: missing binary magic")
	}
	sc.dataEnd = int64(len(binMagic))
	rows := dst
	frame := make([]byte, binFrameLen)
	var payload []byte // reused across blocks; nothing decoded retains it
	for {
		blockOff := sc.dataEnd
		if _, err := io.ReadFull(br, frame); err != nil {
			if err == io.EOF {
				return sc, rows, nil
			}
			if err == io.ErrUnexpectedEOF {
				sc.torn = true // partial frame: crash signature
				return sc, rows, nil
			}
			return sc, nil, fmt.Errorf("record: %w", err)
		}
		kind := frame[0]
		nRows := int(binary.LittleEndian.Uint32(frame[1:]))
		firstRun := int(int32(binary.LittleEndian.Uint32(frame[5:])))
		lastRun := int(int32(binary.LittleEndian.Uint32(frame[9:])))
		payloadLen := int(binary.LittleEndian.Uint32(frame[13:]))
		wantCRC := binary.LittleEndian.Uint32(frame[17:])
		// Structural sanity. The writer emits only well-formed frames, and a
		// crash can only truncate the stream (leaving a partial frame or
		// payload, handled above/below), so a complete frame that is
		// structurally impossible is corruption, not a crash.
		switch {
		case kind != binKindDict && kind != binKindData:
			return sc, nil, fmt.Errorf("record: corrupt block at offset %d: unknown kind 0x%02x", blockOff, kind)
		case payloadLen > binMaxPayload || nRows <= 0:
			return sc, nil, fmt.Errorf("record: corrupt block at offset %d: implausible frame", blockOff)
		case kind == binKindData && payloadLen != nRows*binRowBytes:
			return sc, nil, fmt.Errorf("record: corrupt block at offset %d: payload/row-count mismatch", blockOff)
		}
		if cap(payload) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				sc.torn = true // partial payload: crash signature
				return sc, rows, nil
			}
			return sc, nil, fmt.Errorf("record: %w", err)
		}
		_, peekErr := br.Peek(1)
		final := peekErr == io.EOF
		// fail reports a bad block: torn if it is the file's final block
		// (a disk-level torn write), hard corruption otherwise.
		fail := func(msg string) (binScan, []Row, error) {
			if final {
				sc.torn = true
				return sc, rows, nil
			}
			return sc, nil, fmt.Errorf("record: corrupt block at offset %d: %s", blockOff, msg)
		}
		if crc := crc32.Update(crc32.Update(0, binCRC, frame[:17]), binCRC, payload); crc != wantCRC {
			return fail("checksum mismatch")
		}
		switch kind {
		case binKindDict:
			got := 0
			for off := 0; off < len(payload); {
				if off+4 > len(payload) {
					return fail("truncated dictionary entry")
				}
				l := int(binary.LittleEndian.Uint32(payload[off:]))
				off += 4
				if l < 0 || off+l > len(payload) {
					return fail("dictionary entry overruns payload")
				}
				sc.dict = append(sc.dict, string(payload[off:off+l]))
				off += l
				got++
			}
			if got != nRows {
				return fail(fmt.Sprintf("dictionary has %d entries, frame says %d", got, nRows))
			}
		case binKindData:
			before := len(rows)
			var err error
			rows, err = decodeDataBlock(payload, nRows, sc.dict, rows)
			if err != nil {
				rows = rows[:before]
				return fail(err.Error())
			}
			block := rows[before:]
			if block[0].Run != firstRun || block[len(block)-1].Run != lastRun {
				rows = rows[:before]
				return fail("frame run range disagrees with rows")
			}
			sc.blocks = append(sc.blocks, binBlock{off: blockOff, rows: nRows, firstRow: sc.rows})
			for i := range block {
				if block[i].Run != sc.lastRun {
					sc.lastRun = block[i].Run
					sc.runStartRows = sc.rows
				}
				sc.rows++
			}
			if sink != nil {
				if err := sink(block); err != nil {
					return sc, nil, err
				}
			}
			if !collect {
				rows = rows[:before]
			}
		}
		sc.dataEnd = blockOff + int64(binFrameLen+payloadLen)
	}
}

// ---- sidecar index ----

// binIndex is the decoded sidecar index.
type binIndex struct {
	rows         int
	lastRun      int
	runStartRows int
	dataEnd      int64
	tailLen      int
	tailCRC      uint32
}

const binIndexLen = 8 + 4 + 40 // magic + crc + payload

// writeBinIndex atomically writes the sidecar index for the log at path,
// checksumming the data file's tail (read via ra) so staleness after a
// crash is detectable.
func writeBinIndex(path string, ra io.ReaderAt, rows, lastRun, runStartRows int, dataEnd int64) error {
	tailLen := int64(binIndexTail)
	if dataEnd < tailLen {
		tailLen = dataEnd
	}
	tail := make([]byte, tailLen)
	if _, err := ra.ReadAt(tail, dataEnd-tailLen); err != nil {
		return fmt.Errorf("record: index tail read: %w", err)
	}
	buf := make([]byte, binIndexLen)
	copy(buf, binIndexMagic)
	le := binary.LittleEndian
	p := buf[12:]
	le.PutUint64(p[0:], uint64(rows))
	le.PutUint64(p[8:], uint64(lastRun))
	le.PutUint64(p[16:], uint64(runStartRows))
	le.PutUint64(p[24:], uint64(dataEnd))
	le.PutUint32(p[32:], uint32(tailLen))
	le.PutUint32(p[36:], crc32.Checksum(tail, binCRC))
	le.PutUint32(buf[8:], crc32.Checksum(p, binCRC))
	return fsx.WriteFile(path+binIndexSuffix, buf, 0o644)
}

// loadBinIndex reads and validates the sidecar index for the log at path,
// returning nil if it is missing or corrupt (callers fall back to a scan).
func loadBinIndex(path string) *binIndex {
	buf, err := os.ReadFile(path + binIndexSuffix)
	if err != nil || len(buf) != binIndexLen || string(buf[:8]) != binIndexMagic {
		return nil
	}
	le := binary.LittleEndian
	p := buf[12:]
	if le.Uint32(buf[8:]) != crc32.Checksum(p, binCRC) {
		return nil
	}
	return &binIndex{
		rows:         int(int64(le.Uint64(p[0:]))),
		lastRun:      int(int64(le.Uint64(p[8:]))),
		runStartRows: int(int64(le.Uint64(p[16:]))),
		dataEnd:      int64(le.Uint64(p[24:])),
		tailLen:      int(le.Uint32(p[32:])),
		tailCRC:      le.Uint32(p[36:]),
	}
}

// fresh reports whether the index still describes the data file f: the file
// must end exactly at dataEnd and its checksummed tail must match. Any
// append, truncation, or torn tail since the index was written fails the
// check, sending the caller down the full-scan path.
func (ix *binIndex) fresh(f *os.File) bool {
	st, err := f.Stat()
	if err != nil || st.Size() != ix.dataEnd || int64(ix.tailLen) > ix.dataEnd {
		return false
	}
	tail := make([]byte, ix.tailLen)
	if _, err := f.ReadAt(tail, ix.dataEnd-int64(ix.tailLen)); err != nil {
		return false
	}
	return crc32.Checksum(tail, binCRC) == ix.tailCRC
}

// ---- read-side dispatch targets ----

// readBinaryFile decodes all rows of a binary log, preallocating from the
// sidecar index when it is fresh.
func readBinaryFile(path string) ([]Row, error) {
	if rows, _, ok, err := readBinaryFileFast(path, nil); ok {
		return rows, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// The index row count is only a capacity hint here; the scan still
	// validates every block.
	var dst []Row
	if ix := loadBinIndex(path); ix != nil && ix.fresh(f) && ix.rows > 0 {
		dst = make([]Row, 0, ix.rows)
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
	}
	_, rows, err := scanBinaryDst(f, dst)
	return rows, err
}

// scanBinaryFile is the ScanFile implementation for binary logs. A fresh
// sidecar index answers in O(1) without touching the row data — this is
// what makes clean resume a seek instead of a parse.
func scanBinaryFile(path string) (rows, lastRun int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	if ix := loadBinIndex(path); ix != nil && ix.fresh(f) {
		return ix.rows, ix.lastRun, false, nil
	}
	sc, _, err := scanBinary(f, false)
	if err != nil {
		return 0, 0, false, err
	}
	return sc.rows, sc.lastRun, sc.torn, nil
}

// openAppendBinary opens a binary log for continuation: it validates every
// block, truncates a torn tail, reloads the string dictionary, and positions
// the writer at the end.
func openAppendBinary(path string, o Options) (*Writer, int, error) {
	bw, rows, err := openAppendBinaryCore(path, o)
	if err != nil {
		return nil, 0, err
	}
	return &Writer{bin: bw, opts: o, wroteHeader: true, rows: rows}, rows, nil
}

// openAppendBinaryCore does the work of openAppendBinary but returns the bare
// binWriter, so the segmented log can reuse the same repair-and-position
// logic on its active segment.
func openAppendBinaryCore(path string, o Options) (*binWriter, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	sc, _, err := scanBinary(f, false)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if sc.torn {
		if err := f.Truncate(sc.dataEnd); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("record: truncating torn tail: %w", err)
		}
		os.Remove(path + binIndexSuffix)
	}
	if _, err := f.Seek(sc.dataEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	bw := newBinWriterCore(bufio.NewWriterSize(f, 1<<16))
	bw.f, bw.sync = f, o.Sync
	bw.off, bw.rows = sc.dataEnd, sc.rows
	bw.lastRun, bw.runStartRows = sc.lastRun, sc.runStartRows
	for i, s := range sc.dict {
		bw.dict[s] = uint32(i)
	}
	return bw, sc.rows, nil
}

// truncateBinaryRows cuts the binary log open at f down to its first n rows.
// A cut on a block boundary is a plain truncate; a cut inside a block
// truncates at the block's frame and re-appends the retained prefix as a
// smaller block (its strings are already in the preceding dictionary). The
// sidecar index is rewritten to match.
func truncateBinaryRows(f *os.File, sc binScan, rows []Row, n int) error {
	if n > sc.rows {
		return fmt.Errorf("record: truncate to %d rows: only %d available", n, sc.rows)
	}
	newEnd := sc.dataEnd
	if n < sc.rows {
		// Find the data block containing row n.
		var cut binBlock
		for _, b := range sc.blocks {
			if b.firstRow+b.rows > n {
				cut = b
				break
			}
		}
		if err := f.Truncate(cut.off); err != nil {
			return err
		}
		newEnd = cut.off
		if k := n - cut.firstRow; k > 0 {
			part := rows[cut.firstRow:n]
			dict := make(map[string]uint32, len(sc.dict))
			for i, s := range sc.dict {
				dict[s] = uint32(i)
			}
			payload := encodeDataBlock(part, dict)
			bw := &binWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), off: cut.off}
			if _, err := f.Seek(cut.off, io.SeekStart); err != nil {
				return err
			}
			if err := bw.writeBlock(binKindData, k, part[0].Run, part[k-1].Run, payload); err != nil {
				return err
			}
			if err := bw.bw.Flush(); err != nil {
				return err
			}
			newEnd = bw.off
		}
	} else if sc.torn {
		if err := f.Truncate(sc.dataEnd); err != nil {
			return err
		}
	}
	lastRun, runStartRows := runBookkeeping(rows[:n])
	return writeBinIndex(f.Name(), f, n, lastRun, runStartRows, newEnd)
}

// runBookkeeping replays the CSV scanner's run-transition tracking over
// rows, returning the final run index and the row index where that run's
// rows begin.
func runBookkeeping(rows []Row) (lastRun, runStartRows int) {
	for i := range rows {
		if rows[i].Run != lastRun {
			lastRun = rows[i].Run
			runStartRows = i
		}
	}
	return lastRun, runStartRows
}

// truncateRowsBinary is the TruncateRows implementation for binary logs.
func truncateRowsBinary(path string, n int) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if n > 0 {
		// O(1) fast path: a fresh index already proving the file holds
		// exactly n clean rows means there is nothing to cut.
		if ix := loadBinIndex(path); ix != nil && ix.fresh(f) && ix.rows == n {
			return nil
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}
	sc, rows, err := scanBinary(f, true)
	if err != nil {
		return err
	}
	return truncateBinaryRows(f, sc, rows, n)
}

// truncateTrailingRunBinary is the TruncateTrailingRun implementation for
// binary logs.
func truncateTrailingRunBinary(path string) (rows, droppedRun int, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc, all, err := scanBinary(f, true)
	if err != nil {
		return 0, 0, err
	}
	if sc.lastRun == 0 {
		if sc.torn {
			if err := f.Truncate(sc.dataEnd); err != nil {
				return 0, 0, err
			}
			os.Remove(path + binIndexSuffix)
		}
		return sc.rows, 0, nil
	}
	if err := truncateBinaryRows(f, sc, all, sc.runStartRows); err != nil {
		return 0, 0, err
	}
	return sc.runStartRows, sc.lastRun, nil
}

// writeRowsAtomicBinary renders a complete binary log to a temp file and
// renames it into place, then writes its sidecar index.
func writeRowsAtomicBinary(path string, rows []Row) error {
	f, err := fsx.Create(path)
	if err != nil {
		return err
	}
	w := newBinWriterCore(bufio.NewWriterSize(f, 1<<16))
	if _, err := w.bw.WriteString(binMagic); err != nil {
		f.Abort()
		return err
	}
	for i := range rows {
		if err := w.add(&rows[i]); err != nil {
			f.Abort()
			return err
		}
	}
	if err := w.emit(); err != nil {
		f.Abort()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		f.Abort()
		return err
	}
	if err := f.Close(); err != nil { // sync + atomic rename into place
		return err
	}
	pub, err := os.Open(path)
	if err != nil {
		return err
	}
	defer pub.Close()
	return writeBinIndex(path, pub, w.rows, w.lastRun, w.runStartRows, w.off)
}
