package record

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeSegmented writes rows to a segmented binary log rolling every segRows.
func writeSegmented(t *testing.T, path string, rows []Row, segRows int) {
	t.Helper()
	w, err := CreateDurable(path, Options{FlushEvery: 1, SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	if w.seg == nil {
		t.Fatalf("CreateDurable(%q, SegmentRows=%d) did not pick the segmented layout", path, segRows)
	}
	if err := w.WriteAll(rows); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// segCount returns the number of segment files on disk.
func segCount(t *testing.T, path string) int {
	t.Helper()
	des, err := os.ReadDir(segDir(path))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if strings.HasSuffix(de.Name(), BinaryExt) {
			n++
		}
	}
	return n
}

// logBytes snapshots every byte of a segmented log — manifest plus all
// segments — for byte-identity differentials.
func logBytes(t *testing.T, path string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out["manifest"] = data
	des, err := os.ReadDir(segDir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), BinaryExt) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(segDir(path), de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[de.Name()] = data
	}
	return out
}

// TestSegmentedRoundTrip checks the full surface of a multi-segment log
// against the same rows in a single-file log: identical rows, scan results,
// stream batches, and ranged reads.
func TestSegmentedRoundTrip(t *testing.T) {
	all := runRows(40, 3) // 120 rows
	single := binPath(t, "single.sharpb")
	writeBinary(t, single, all, Options{FlushEvery: 1})
	path := filepath.Join(t.TempDir(), "seg.sharpb")
	writeSegmented(t, path, all, 10)

	if n := segCount(t, path); n < 4 {
		t.Fatalf("expected >=4 segments at segRows=10, got %d", n)
	}
	want, err := ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("segmented rows differ from single-file rows (%d vs %d)", len(got), len(want))
	}
	r1, l1, torn1, err1 := ScanFile(single)
	r2, l2, torn2, err2 := ScanFile(path)
	if err1 != nil || err2 != nil || r1 != r2 || l1 != l2 || torn1 != torn2 {
		t.Fatalf("scan mismatch: single=(%d,%d,%v,%v) segmented=(%d,%d,%v,%v)",
			r1, l1, torn1, err1, r2, l2, torn2, err2)
	}
	var streamed []Row
	if err := StreamFile(path, func(batch []Row) error {
		streamed = append(streamed, batch...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, streamed) {
		t.Fatal("segmented stream differs from single-file rows")
	}
	runsWant, err := ReadRuns(single, 12, 17)
	if err != nil {
		t.Fatal(err)
	}
	runsGot, err := ReadRuns(path, 12, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runsWant, runsGot) {
		t.Fatal("segmented ReadRuns differs from single-file ReadRuns")
	}
}

// TestSegmentedRunsNeverSpanSegments verifies the roll invariant: every run's
// rows live in exactly one segment file.
func TestSegmentedRunsNeverSpanSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "span.sharpb")
	writeSegmented(t, path, runRows(30, 4), 7) // roll threshold mid-run on purpose
	owner := map[int]int{}
	for i := 0; i < segCount(t, path); i++ {
		rows, err := ReadFile(segPath(path, i))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if prev, ok := owner[r.Run]; ok && prev != i {
				t.Fatalf("run %d spans segments %d and %d", r.Run, prev, i)
			}
			owner[r.Run] = i
		}
	}
}

// TestSegmentedResumeByteIdentity is the resume differential: interrupt a
// segmented campaign (torn active segment), repair via OpenAppend, append the
// remaining rows — the final on-disk bytes must equal the uninterrupted
// write, manifest included.
func TestSegmentedResumeByteIdentity(t *testing.T) {
	all := runRows(40, 3)
	ref := filepath.Join(t.TempDir(), "ref.sharpb")
	writeSegmented(t, ref, all, 10)

	path := filepath.Join(t.TempDir(), "crash.sharpb")
	w, err := CreateDurable(path, Options{FlushEvery: 1, SegmentRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	cut := 97 // mid-run 33: inside the active segment
	if err := w.WriteAll(all[:cut]); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: abandon the writer (no Close, no index) and tear the
	// active segment mid-block.
	ap := segPath(path, segCount(t, path)-1)
	st, err := os.Stat(ap)
	if err != nil {
		t.Fatal(err)
	}
	chop(t, ap, st.Size()-13)

	rows, droppedRun, err := TruncateTrailingRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if droppedRun == 0 {
		t.Fatal("expected the torn trailing run to be dropped")
	}
	w2, n, err := OpenAppend(path, Options{FlushEvery: 1, SegmentRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("OpenAppend rows=%d, TruncateTrailingRun said %d", n, rows)
	}
	if err := w2.WriteAll(all[n:]); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || !reflect.DeepEqual(all, got) {
		t.Fatalf("resumed rows differ (%d, %v)", len(got), err)
	}
	wantBytes, gotBytes := logBytes(t, ref), logBytes(t, path)
	if len(wantBytes) != len(gotBytes) {
		t.Fatalf("file sets differ: ref=%d files, resumed=%d files", len(wantBytes), len(gotBytes))
	}
	for name, want := range wantBytes {
		if !reflect.DeepEqual(want, gotBytes[name]) {
			t.Fatalf("%s differs between uninterrupted and resumed logs", name)
		}
	}
}

// TestSegmentedManifestDamageRebuild tears or corrupts the manifest itself;
// every reader must rebuild it from the segments, and OpenAppend must
// persist the repair and resume byte-identically.
func TestSegmentedManifestDamageRebuild(t *testing.T) {
	all := runRows(40, 3)
	for _, tc := range []struct {
		name string
		hurt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			st, _ := os.Stat(path)
			chop(t, path, st.Size()/2)
		}},
		{"zeroed", func(t *testing.T, path string) {
			if err := os.WriteFile(path, make([]byte, 64), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"crc-flip", func(t *testing.T, path string) { flipByte(t, path, segHeaderLen+3) }},
		{"deleted", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := filepath.Join(t.TempDir(), "ref.sharpb")
			writeSegmented(t, ref, all, 10)
			path := filepath.Join(t.TempDir(), "mfst.sharpb")
			writeSegmented(t, path, all[:97], 10)
			tc.hurt(t, path)

			rows, _, _, err := ScanFile(path)
			if err != nil {
				t.Fatalf("scan after manifest damage: %v", err)
			}
			if rows != 97 {
				t.Fatalf("scan rows=%d, want 97", rows)
			}
			got, err := ReadFile(path)
			if err != nil || !reflect.DeepEqual(all[:97], got) {
				t.Fatalf("read after manifest damage = (%d rows, %v)", len(got), err)
			}
			w, n, err := OpenAppend(path, Options{FlushEvery: 1, SegmentRows: 10})
			if err != nil {
				t.Fatalf("OpenAppend after manifest damage: %v", err)
			}
			if n != 97 {
				t.Fatalf("OpenAppend rows=%d, want 97", n)
			}
			if err := w.WriteAll(all[97:]); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			wantBytes, gotBytes := logBytes(t, ref), logBytes(t, path)
			for name, want := range wantBytes {
				if !reflect.DeepEqual(want, gotBytes[name]) {
					t.Fatalf("%s differs from uninterrupted reference", name)
				}
			}
		})
	}
}

// TestSegmentedSealedDamageIsCorruption proves damage to a sealed segment is
// hard corruption (like an interior block of a single-file log), not a
// repairable tear.
func TestSegmentedSealedDamageIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sealed.sharpb")
	writeSegmented(t, path, runRows(40, 3), 10)
	flipByte(t, path, int64(segHeaderLen)) // force manifest rebuild too
	sp := segPath(path, 0)
	st, err := os.Stat(sp)
	if err != nil {
		t.Fatal(err)
	}
	chop(t, sp, st.Size()-9) // tear the *sealed* first segment
	if _, _, _, err := ScanFile(path); err == nil {
		t.Fatal("scan accepted a torn sealed segment")
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("read accepted a torn sealed segment")
	}
}

// TestSegmentedTruncateRows cuts at boundaries and interiors of both sealed
// and active segments, comparing against the single-file reference.
func TestSegmentedTruncateRows(t *testing.T) {
	all := runRows(40, 3) // 120 rows, ~10-row segments
	for _, n := range []int{120, 113, 100, 60, 33, 30, 12, 0} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cut.sharpb")
			writeSegmented(t, path, all, 10)
			if err := TruncateRows(path, n); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(all[:n], got) && n > 0 {
				t.Fatalf("got %d rows, want first %d", len(got), n)
			}
			if n == 0 && len(got) != 0 {
				t.Fatalf("got %d rows, want 0", len(got))
			}
			// The cut log must remain appendable.
			w, m, err := OpenAppend(path, Options{FlushEvery: 1, SegmentRows: 10})
			if err != nil || m != n {
				t.Fatalf("OpenAppend after cut = (%d, %v), want %d", m, err, n)
			}
			if err := w.WriteAll(all[n:]); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if got, err = ReadFile(path); err != nil || !reflect.DeepEqual(all, got) {
				t.Fatalf("append after cut = (%d rows, %v)", len(got), err)
			}
		})
	}
	t.Run("too-many", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "cut.sharpb")
		writeSegmented(t, path, all, 10)
		if err := TruncateRows(path, len(all)+1); err == nil {
			t.Fatal("TruncateRows past the end succeeded")
		}
	})
}

// TestSegmentedTruncateTrailingRun drops final runs repeatedly, including
// across a seal boundary (unsealing the last sealed segment).
func TestSegmentedTruncateTrailingRun(t *testing.T) {
	all := runRows(8, 3) // 24 rows, segRows=6: run never spans, rolls every 2 runs
	path := filepath.Join(t.TempDir(), "trail.sharpb")
	writeSegmented(t, path, all, 6)
	remaining := len(all)
	for run := 8; run >= 1; run-- {
		rows, dropped, err := TruncateTrailingRun(path)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		remaining -= 3
		if rows != remaining || dropped != run {
			t.Fatalf("run %d: got (rows=%d, dropped=%d), want (%d, %d)", run, rows, dropped, remaining, run)
		}
		got, err := ReadFile(path)
		if err != nil || !reflect.DeepEqual(all[:remaining], got) && remaining > 0 {
			t.Fatalf("run %d: rows after drop = (%d, %v)", run, len(got), err)
		}
	}
	// Empty log: nothing left to drop.
	rows, dropped, err := TruncateTrailingRun(path)
	if err != nil || rows != 0 || dropped != 0 {
		t.Fatalf("empty drop = (%d, %d, %v), want (0, 0, nil)", rows, dropped, err)
	}
}

// TestSegmentedOpenAppendMissingActiveSegment covers the crash window
// between sealing segment N and creating segment N+1.
func TestSegmentedOpenAppendMissingActiveSegment(t *testing.T) {
	all := runRows(12, 2)
	path := filepath.Join(t.TempDir(), "gap.sharpb")
	writeSegmented(t, path, all[:12], 6) // seals segment 0 (run boundary at 12 rows)
	// Remove the active segment, simulating the crash after the manifest
	// write but before the next segment's create.
	if err := os.Remove(segPath(path, segCount(t, path)-1)); err != nil {
		t.Fatal(err)
	}
	m, _, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	sealed := m.sealedRows()
	w, n, err := OpenAppend(path, Options{FlushEvery: 1, SegmentRows: 6})
	if err != nil {
		t.Fatalf("OpenAppend with missing active segment: %v", err)
	}
	if n != sealed {
		t.Fatalf("rows=%d, want %d", n, sealed)
	}
	if err := w.WriteAll(all[n:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || !reflect.DeepEqual(all, got) {
		t.Fatalf("rows after recovery = (%d, %v)", len(got), err)
	}
}

// TestSegmentedEmptyActiveSegment covers the kill -9 window between creating
// a segment and its first buffer flush: the active segment exists but is 0
// bytes (createBinary only buffers the magic). Every read and repair surface
// must treat it like a missing active segment — zero durable rows — and the
// resume flow must recover, not fail on "missing binary magic".
func TestSegmentedEmptyActiveSegment(t *testing.T) {
	all := runRows(12, 2)
	t.Run("after-seal", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "empty-active.sharpb")
		writeSegmented(t, path, all[:12], 6) // seals segment 0 at the run boundary
		ap := segPath(path, segCount(t, path)-1)
		if err := os.WriteFile(ap, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		os.Remove(ap + binIndexSuffix)
		m, _, err := loadManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		sealed := m.sealedRows()
		wantLast := m.entries[len(m.entries)-1].lastRun

		rows, lastRun, torn, err := ScanFile(path)
		if err != nil || rows != sealed || lastRun != wantLast || torn {
			t.Fatalf("ScanFile = (%d, %d, %v, %v), want (%d, %d, false, nil)", rows, lastRun, torn, err, sealed, wantLast)
		}
		got, err := ReadFile(path)
		if err != nil || !reflect.DeepEqual(all[:sealed], got) {
			t.Fatalf("ReadFile = (%d rows, %v), want the %d sealed rows", len(got), err, sealed)
		}
		var streamed []Row
		if err := StreamFile(path, func(batch []Row) error {
			streamed = append(streamed, batch...)
			return nil
		}); err != nil || !reflect.DeepEqual(all[:sealed], streamed) {
			t.Fatalf("StreamFile = (%d rows, %v), want the %d sealed rows", len(streamed), err, sealed)
		}
		if runs, err := ReadRuns(path, 1, wantLast); err != nil || !reflect.DeepEqual(all[:sealed], runs) {
			t.Fatalf("ReadRuns = (%d rows, %v), want the %d sealed rows", len(runs), err, sealed)
		}
		if err := TruncateRows(path, sealed); err != nil {
			t.Fatalf("TruncateRows(%d) = %v, want nil", sealed, err)
		}
		w, n, err := OpenAppend(path, Options{FlushEvery: 1, SegmentRows: 6})
		if err != nil || n != sealed {
			t.Fatalf("OpenAppend = (%d, %v), want (%d, nil)", n, err, sealed)
		}
		if err := w.WriteAll(all[n:]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Byte-identity with an uninterrupted write, as in the missing-segment
		// recovery test.
		ref := filepath.Join(t.TempDir(), "ref.sharpb")
		writeSegmented(t, ref, all, 6)
		wantBytes, gotBytes := logBytes(t, ref), logBytes(t, path)
		for name, want := range wantBytes {
			if !reflect.DeepEqual(want, gotBytes[name]) {
				t.Fatalf("%s differs from uninterrupted reference", name)
			}
		}
	})
	t.Run("trailing-run-unseals", func(t *testing.T) {
		// With an empty active segment the trailing run lives in the last
		// sealed segment; TruncateTrailingRun must unseal and cut there.
		path := filepath.Join(t.TempDir(), "empty-trail.sharpb")
		writeSegmented(t, path, all[:12], 6)
		ap := segPath(path, segCount(t, path)-1)
		if err := os.WriteFile(ap, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		// Sealed segment 0 holds runs 1-3 (6 rows): the drop unseals it and
		// cuts run 3, leaving 4 rows.
		rows, dropped, err := TruncateTrailingRun(path)
		if err != nil || rows != 4 || dropped != 3 {
			t.Fatalf("TruncateTrailingRun = (%d, %d, %v), want (4, 3, nil)", rows, dropped, err)
		}
		if got, err := ReadFile(path); err != nil || !reflect.DeepEqual(all[:4], got) {
			t.Fatalf("rows after drop = (%d, %v)", len(got), err)
		}
	})
	t.Run("first-segment", func(t *testing.T) {
		// Crash before anything was flushed at all: manifest with zero sealed
		// entries next to a 0-byte 0000.sharpb.
		path := filepath.Join(t.TempDir(), "empty-first.sharpb")
		writeSegmented(t, path, nil, 6)
		ap := segPath(path, 0)
		if err := os.WriteFile(ap, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		os.Remove(ap + binIndexSuffix)
		if rows, lastRun, torn, err := ScanFile(path); rows != 0 || lastRun != 0 || torn || err != nil {
			t.Fatalf("ScanFile = (%d, %d, %v, %v), want (0, 0, false, nil)", rows, lastRun, torn, err)
		}
		if got, err := ReadFile(path); len(got) != 0 || err != nil {
			t.Fatalf("ReadFile = (%d rows, %v), want empty", len(got), err)
		}
		if rows, dropped, err := TruncateTrailingRun(path); rows != 0 || dropped != 0 || err != nil {
			t.Fatalf("TruncateTrailingRun = (%d, %d, %v), want (0, 0, nil)", rows, dropped, err)
		}
		w, n, err := OpenAppend(path, Options{FlushEvery: 1, SegmentRows: 6})
		if err != nil || n != 0 {
			t.Fatalf("OpenAppend = (%d, %v), want (0, nil)", n, err)
		}
		if err := w.WriteAll(all); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got, err := ReadFile(path); err != nil || !reflect.DeepEqual(all, got) {
			t.Fatalf("rows after recovery = (%d, %v)", len(got), err)
		}
	})
}

// TestSegmentedMissingSealedSegmentIsError proves a deleted *sealed* segment
// is hard corruption on every read surface — ReadRuns included, which must
// not silently return a partial result.
func TestSegmentedMissingSealedSegmentIsError(t *testing.T) {
	all := runRows(40, 3)
	path := filepath.Join(t.TempDir(), "gone.sharpb")
	writeSegmented(t, path, all, 10)
	if err := os.Remove(segPath(path, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRuns(path, 1, 40); err == nil {
		t.Fatal("ReadRuns accepted a missing sealed segment")
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("ReadFile accepted a missing sealed segment")
	}
	if err := StreamFile(path, func([]Row) error { return nil }); err == nil {
		t.Fatal("StreamFile accepted a missing sealed segment")
	}
	t.Run("nommap", func(t *testing.T) {
		t.Setenv(NoMmapEnv, "1")
		if _, err := ReadRuns(path, 1, 40); err == nil {
			t.Fatal("ReadRuns (no mmap) accepted a missing sealed segment")
		}
	})
}

// TestManifestEncodeParseRoundTrip pins the manifest wire format.
func TestManifestEncodeParseRoundTrip(t *testing.T) {
	m := &segManifest{segRows: 1 << 20, entries: []segEntry{
		{rows: 10, lastRun: 4, runStart: 8, bytes: 900},
		{rows: 12, lastRun: 9, runStart: 10, bytes: 1100},
	}}
	got, err := parseManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip: got %+v want %+v", got, m)
	}
	for _, hurt := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)-1] },
		func(b []byte) []byte { b[9]++; return b },              // crc
		func(b []byte) []byte { b[len(b)-3] ^= 0xff; return b }, // payload
		func(b []byte) []byte { b[0] = 'X'; return b },          // magic
		func(b []byte) []byte { return nil },
	} {
		if _, err := parseManifest(hurt(encodeManifest(m))); err == nil {
			t.Fatal("damaged manifest accepted")
		}
	}
}
