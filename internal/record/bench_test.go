package record

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// benchRows builds a deterministic million-row-scale campaign log: a
// realistic mix of runs, instances, metrics, and occasional failure rows,
// with nanosecond timestamps. Determinism matters — bin_bytes_per_row is
// gated as an exact reproduction target.
func benchRows(n int) []Row {
	rows := make([]Row, n)
	// Values and timestamps carry full float64 / nanosecond precision, like
	// real campaign rows (Sim draws are full-precision lognormals and the
	// launcher clock has nanosecond resolution); a deterministic xorshift
	// keeps bin_bytes_per_row an exact reproduction target.
	rng := uint64(0x9E3779B97F4A7C15)
	for i := range rows {
		rows[i] = benchRow(i, &rng)
	}
	return rows
}

// benchRow computes row i of the deterministic benchmark log, advancing the
// xorshift state — the streaming form of benchRows, for logs too large to
// materialize.
func benchRow(i int, rng *uint64) Row {
	base := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	metrics := [3]string{"exec_time", "detection_time", "throughput"}
	units := [3]string{"seconds", "seconds", "ops"}
	*rng ^= *rng << 13
	*rng ^= *rng >> 7
	*rng ^= *rng << 17
	m := i % 3
	r := Row{
		Timestamp:  base.Add(time.Duration(i)*137137*time.Nanosecond + time.Duration(*rng%997)),
		Experiment: "bench1e6", Workload: "hotspot", Backend: "sim",
		Machine: fmt.Sprintf("machine%d", i%4+1),
		Day:     i%5 + 1, Run: i/6 + 1, Instance: i%2 + 1,
		Metric: metrics[m], Value: 1.5 + float64(*rng>>11)/float64(1<<53),
		Unit: units[m], Status: StatusOK, Attempt: 1,
	}
	if i%997 == 0 {
		r.Status, r.Metric = StatusError, MetricError
		r.Value, r.Error = 1, "injected: worker lost"
	}
	return r
}

// benchWrite writes rows to path through the public Writer facade and
// returns the file size.
func benchWrite(b *testing.B, path string, rows []Row) int64 {
	b.Helper()
	w, err := CreateDurable(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.WriteAll(rows); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	return st.Size()
}

const benchN = 1_000_000

// BenchmarkRecordWrite1e6 measures raw append throughput of one million
// tidy rows per format.
func BenchmarkRecordWrite1e6(b *testing.B) {
	rows := benchRows(benchN)
	for _, ext := range []string{"csv", "sharpb"} {
		b.Run(ext, func(b *testing.B) {
			dir := b.TempDir()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchWrite(b, filepath.Join(dir, fmt.Sprintf("w%d.%s", i, ext)), rows)
			}
			b.ReportMetric(float64(benchN)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkReplay1e6 measures full-log decode (the resume replay path) of
// one million rows per format.
func BenchmarkReplay1e6(b *testing.B) {
	rows := benchRows(benchN)
	for _, ext := range []string{"csv", "sharpb"} {
		b.Run(ext, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "replay."+ext)
			benchWrite(b, path, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := ReadFile(path)
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != benchN {
					b.Fatalf("decoded %d rows", len(got))
				}
			}
			b.ReportMetric(float64(benchN)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkRecordReplaySpeedup1e6 times one record+replay cycle of a million
// rows in each format against an in-memory stream and reports the binary/CSV
// speedup. Record is a buffered encode of every row; replay streams the log
// back through record.Stream into a per-run accumulator fold (the shape of
// resume's replay). Memory targets isolate the codec from the benchmark
// host's disk throughput — on a ~100 MB/s disk the write() calls alone would
// dominate both formats; the on-disk advantage shows up separately as
// bin_bytes_per_row (68 vs ~130 for CSV). speedup_x is gated as a floor (the
// binary codec must stay >=10x CSV); bin_bytes_per_row is deterministic for
// the fixed benchRows content and gated exactly.
func BenchmarkRecordReplaySpeedup1e6(b *testing.B) {
	rows := benchRows(benchN)
	replay := func(data []byte, format Format) {
		n, runs, lastRun := 0, 0, -1
		var sum float64
		err := Stream(bytes.NewReader(data), format, func(batch []Row) error {
			for i := range batch {
				if batch[i].Run != lastRun {
					lastRun, runs = batch[i].Run, runs+1
				}
				if batch[i].Status == StatusOK && batch[i].Metric == "exec_time" {
					sum += batch[i].Value
				}
				n++
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != benchN || runs != benchN/6+1 || sum == 0 {
			b.Fatalf("replayed %d rows, %d runs", n, runs)
		}
	}
	csvCycle := func(buf *bytes.Buffer) {
		buf.Reset()
		w := NewWriter(buf)
		if err := w.WriteAll(rows); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		replay(buf.Bytes(), FormatCSV)
	}
	binCycle := func(buf *bytes.Buffer) int64 {
		buf.Reset()
		bw := bufio.NewWriterSize(buf, 1<<16)
		w := newBinWriterCore(bw)
		if _, err := bw.WriteString(binMagic); err != nil {
			b.Fatal(err)
		}
		for i := range rows {
			if err := w.add(&rows[i]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.emit(); err != nil {
			b.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		replay(buf.Bytes(), FormatBinary)
		return int64(buf.Len())
	}
	time5 := func(fn func()) time.Duration {
		// Best of five, each after a fresh GC: the measurement must not pay
		// for the other format's garbage, and best-of rides out scheduler
		// noise on shared benchmark hosts.
		best := time.Duration(1 << 62)
		for t := 0; t < 5; t++ {
			runtime.GC()
			start := time.Now()
			fn()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	var csvBuf, binBuf bytes.Buffer
	var speedup, bytesPerRow float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var binSize int64
		binT := time5(func() { binSize = binCycle(&binBuf) })
		csvT := time5(func() { csvCycle(&csvBuf) })
		speedup = csvT.Seconds() / binT.Seconds()
		bytesPerRow = float64(binSize) / benchN
	}
	b.ReportMetric(speedup, "speedup_x")
	b.ReportMetric(bytesPerRow, "bin_bytes_per_row")
}

// BenchmarkReplay1e7 measures the mapped zero-copy reader against the
// streaming scanner on a ten-million-row log — resume replay at the scale
// where allocator traffic dominates. The streaming leg is the PR 7 crash
// replay exactly: a buffered scan appending into an unhinted slab, because a
// crash repair has just invalidated the sidecar index, so ReadFile gets no
// capacity hint and grow-and-copies its way through ~2 GB of rows (it is
// timed once — it is the expensive thing being replaced). The mapped leg is
// ReadFileInto reusing its slab, the shape of the service recovery loop.
// mmap_speedup_x is gated as a floor in BENCH_pr9.json: the mapped path must
// stay >=3x the streaming scanner.
func BenchmarkReplay1e7(b *testing.B) {
	if !mmapSupported {
		b.Skip("no mmap on this platform")
	}
	const n = 10 * benchN
	path := filepath.Join(b.TempDir(), "replay1e7.sharpb")
	w, err := CreateDurable(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ { // streamed: 1e7 rows never materialize at once
		r := benchRow(i, &rng)
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	os.Remove(path + binIndexSuffix) // crash shape: no fresh sidecar index
	streaming := func() time.Duration {
		runtime.GC()
		start := time.Now()
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		_, rows, err := scanBinaryDst(f, nil)
		if err != nil || len(rows) != n {
			b.Fatalf("streaming decoded %d rows, err=%v", len(rows), err)
		}
		return time.Since(start)
	}
	var dst []Row
	mapped := func() time.Duration {
		best := time.Duration(1 << 62)
		for t := 0; t < 3; t++ {
			runtime.GC()
			start := time.Now()
			var err error
			if dst, err = ReadFileInto(path, dst); err != nil || len(dst) != n {
				b.Fatalf("mapped decoded %d rows, err=%v", len(dst), err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	var speedup, mappedSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streamT := streaming()
		mappedT := mapped()
		speedup = streamT.Seconds() / mappedT.Seconds()
		mappedSec = mappedT.Seconds()
	}
	b.ReportMetric(speedup, "mmap_speedup_x")
	b.ReportMetric(float64(n)/mappedSec, "rows/s")
}

// BenchmarkReplayReuse1e6 pins the steady-state allocation count of a mapped
// replay into a reused slab: after the first read owns the row slab, each
// further replay must allocate only the handful of per-read bookkeeping
// objects (mapping, block refs, dictionary strings) — not another
// hundreds-of-MB row slab. reuse_allocs is deterministic (parallelism pinned
// to 1) and gated exactly in BENCH_pr9.json.
func BenchmarkReplayReuse1e6(b *testing.B) {
	if !mmapSupported {
		b.Skip("no mmap on this platform")
	}
	path := filepath.Join(b.TempDir(), "reuse.sharpb")
	benchWrite(b, path, benchRows(benchN))
	prev := readParallelism.Load()
	readParallelism.Store(1)
	defer readParallelism.Store(prev)
	var dst []Row
	var err error
	if dst, err = ReadFileInto(path, dst); err != nil || len(dst) != benchN {
		b.Fatalf("warmup read: %d rows, err=%v", len(dst), err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if dst, err = ReadFileInto(path, dst); err != nil || len(dst) != benchN {
			b.Fatalf("reuse read: %d rows, err=%v", len(dst), err)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = ReadFileInto(path, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(allocs, "reuse_allocs")
	b.ReportMetric(float64(benchN)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
