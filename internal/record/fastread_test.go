package record

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"unsafe"
)

// setParallelism overrides the global decode parallelism for one test,
// restoring the previous value afterwards.
func setParallelism(t *testing.T, n int) {
	t.Helper()
	prev := readParallelism.Load()
	readParallelism.Store(int64(n))
	t.Cleanup(func() { readParallelism.Store(prev) })
}

// readStreaming reads a binary log through the portable scanner, bypassing
// the mapped fast path — the reference the mapped reader must match.
func readStreaming(t *testing.T, path string) ([]Row, bool, error) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, rows, err := scanBinaryDst(f, nil)
	return rows, sc.torn, err
}

// TestMappedReadParity proves the mapped reader returns bit-identical rows to
// the streaming scanner on clean logs, across block shapes and parallelism.
func TestMappedReadParity(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	for _, n := range []int{0, 1, 25, binBlockRows, 3*binBlockRows + 17} {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(t *testing.T) {
				setParallelism(t, p)
				path := binPath(t, "parity.sharpb")
				writeBinary(t, path, sampleRows(n), Options{})
				want, wantTorn, werr := readStreaming(t, path)
				got, gotTorn, ok, gerr := readBinaryFileFast(path, nil)
				if !ok {
					t.Fatal("mapped fast path unavailable")
				}
				if (werr == nil) != (gerr == nil) || wantTorn != gotTorn {
					t.Fatalf("mapped=(torn=%v,%v) streaming=(torn=%v,%v)", gotTorn, gerr, wantTorn, werr)
				}
				if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
					t.Fatalf("mapped rows differ from streaming rows (%d vs %d)", len(got), len(want))
				}
			})
		}
	}
}

// TestMappedDamageParity drives the mapped and streaming readers over the
// same damaged logs: identical rows, torn verdicts, and error strings.
func TestMappedDamageParity(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	all := runRows(8, 2)
	for _, tc := range []struct {
		name string
		hurt func(t *testing.T, path string, offs []int64)
	}{
		{"clean", func(t *testing.T, path string, offs []int64) {}},
		{"torn-frame", func(t *testing.T, path string, offs []int64) {
			chop(t, path, offs[len(offs)-1]+7)
		}},
		{"torn-payload", func(t *testing.T, path string, offs []int64) {
			st, _ := os.Stat(path)
			chop(t, path, st.Size()-30)
		}},
		{"final-crc", func(t *testing.T, path string, offs []int64) {
			flipByte(t, path, offs[len(offs)-1]+binFrameLen+3)
		}},
		{"interior-crc", func(t *testing.T, path string, offs []int64) {
			flipByte(t, path, offs[2]+binFrameLen+3)
		}},
		{"interior-kind", func(t *testing.T, path string, offs []int64) {
			flipByte(t, path, offs[2])
		}},
	} {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/p=%d", tc.name, p), func(t *testing.T) {
				setParallelism(t, p)
				path := binPath(t, "dmg.sharpb")
				offs := binLayout(t, path, all)
				tc.hurt(t, path, offs)
				want, wantTorn, werr := readStreaming(t, path)
				got, gotTorn, ok, gerr := readBinaryFileFast(path, nil)
				if !ok {
					t.Fatal("mapped fast path unavailable")
				}
				if fmt.Sprint(werr) != fmt.Sprint(gerr) {
					t.Fatalf("error mismatch:\n  mapped:    %v\n  streaming: %v", gerr, werr)
				}
				if werr != nil {
					return
				}
				if wantTorn != gotTorn || !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
					t.Fatalf("mapped (%d rows, torn=%v) differs from streaming (%d rows, torn=%v)",
						len(got), gotTorn, len(want), wantTorn)
				}
			})
		}
	}
}

// TestStreamFileMappedParity proves StreamFile delivers the same rows in the
// same order through the mapped path (serial and parallel) as the portable
// scanner.
func TestStreamFileMappedParity(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	path := binPath(t, "stream.sharpb")
	rows := sampleRows(2*binBlockRows + 100)
	writeBinary(t, path, rows, Options{})
	want, _, _ := readStreaming(t, path)
	for _, p := range []int{1, 3} {
		setParallelism(t, p)
		var got []Row
		if err := StreamFile(path, func(batch []Row) error {
			got = append(got, batch...) // copies: batches are reused
			return nil
		}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("p=%d: streamed rows differ from reference", p)
		}
	}
}

// TestStreamFileMappedSinkError proves a sink error aborts a parallel
// mapped stream promptly and is returned verbatim.
func TestStreamFileMappedSinkError(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	setParallelism(t, 4)
	path := binPath(t, "sinkerr.sharpb")
	writeBinary(t, path, sampleRows(6*binBlockRows), Options{})
	boom := fmt.Errorf("sink boom")
	n := 0
	err := StreamFile(path, func(batch []Row) error {
		if n++; n == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestNoMmapEnvForcesFallback proves SHARP_RECORD_NOMMAP=1 disables the
// mapped path while keeping results identical.
func TestNoMmapEnvForcesFallback(t *testing.T) {
	path := binPath(t, "nommap.sharpb")
	rows := sampleRows(100)
	writeBinary(t, path, rows, Options{})
	t.Setenv(NoMmapEnv, "1")
	if _, _, ok, _ := readBinaryFileFast(path, nil); ok {
		t.Fatal("mapped path ran despite SHARP_RECORD_NOMMAP=1")
	}
	got, err := ReadFile(path)
	if err != nil || !reflect.DeepEqual(rows, got) {
		t.Fatalf("fallback ReadFile = (%d rows, %v)", len(got), err)
	}
}

// TestReadFileInto proves the reuse path: a second read into the first
// read's slab returns identical rows without reallocating the backing array.
func TestReadFileInto(t *testing.T) {
	path := binPath(t, "reuse.sharpb")
	rows := sampleRows(binBlockRows + 50)
	writeBinary(t, path, rows, Options{})
	first, err := ReadFileInto(path, nil)
	if err != nil || !reflect.DeepEqual(rows, first) {
		t.Fatalf("first read = (%d rows, %v)", len(first), err)
	}
	second, err := ReadFileInto(path, first)
	if err != nil || !reflect.DeepEqual(rows, second) {
		t.Fatalf("second read = (%d rows, %v)", len(second), err)
	}
	if unsafe.SliceData(first) != unsafe.SliceData(second) {
		t.Fatal("second read reallocated despite sufficient capacity")
	}
}

// TestReadRuns checks the ranged read against a filtered full read, on both
// the block-skipping mapped path and the streaming fallback.
func TestReadRuns(t *testing.T) {
	path := binPath(t, "runs.sharpb")
	all := runRows(2500, 4) // 10000 rows: several blocks with FlushEvery default
	writeBinary(t, path, all, Options{})
	for _, window := range [][2]int{{1, 2500}, {7, 9}, {2400, 2600}, {9000, 9999}, {5, 4}} {
		lo, hi := window[0], window[1]
		var want []Row
		for _, r := range all {
			if r.Run >= lo && r.Run <= hi {
				want = append(want, r)
			}
		}
		got, err := ReadRuns(path, lo, hi)
		if err != nil {
			t.Fatalf("[%d,%d]: %v", lo, hi, err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("[%d,%d]: got %d rows, want %d", lo, hi, len(got), len(want))
		}
	}
	t.Run("fallback", func(t *testing.T) {
		t.Setenv(NoMmapEnv, "1")
		got, err := ReadRuns(path, 7, 9)
		if err != nil || len(got) != 12 {
			t.Fatalf("fallback ReadRuns = (%d rows, %v), want 12", len(got), err)
		}
	})
}

// writeOversizedBlockLog writes a structurally valid binary log whose single
// data block holds more than binBlockRows rows — never produced by SHARP's
// writer, but legal under the frame rules and accepted by the streaming
// scanner, so a foreign writer may emit it.
func writeOversizedBlockLog(t *testing.T, path string, rows []Row) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bw := newBinWriterCore(bufio.NewWriterSize(f, 1<<16))
	bw.f = f
	if _, err := bw.bw.WriteString(binMagic); err != nil {
		t.Fatal(err)
	}
	dict := map[string]uint32{}
	var dp []byte
	for i := range rows {
		for _, s := range rows[i].binStrings() {
			if _, ok := dict[s]; !ok {
				dict[s] = uint32(len(dict))
				dp = binary.LittleEndian.AppendUint32(dp, uint32(len(s)))
				dp = append(dp, s...)
			}
		}
	}
	if err := bw.writeBlock(binKindDict, len(dict), 0, 0, dp); err != nil {
		t.Fatal(err)
	}
	payload := encodeDataBlock(rows, dict)
	if err := bw.writeBlock(binKindData, len(rows), rows[0].Run, rows[len(rows)-1].Run, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestMappedOversizedBlock proves the mapped readers handle a foreign data
// block larger than binBlockRows exactly like the streaming scanner — decode
// it, not panic on a fixed-size batch buffer — across stream, read, and
// ranged-read paths, serial and parallel.
func TestMappedOversizedBlock(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	rows := runRows((binBlockRows+100)/2, 2) // one block of binBlockRows+100 rows
	path := binPath(t, "oversized.sharpb")
	writeOversizedBlockLog(t, path, rows)
	want, wantTorn, werr := readStreaming(t, path)
	if werr != nil || wantTorn {
		t.Fatalf("streaming reference = (torn=%v, %v), want clean", wantTorn, werr)
	}
	for _, p := range []int{1, 4} {
		setParallelism(t, p)
		got, gotTorn, ok, gerr := readBinaryFileFast(path, nil)
		if !ok || gerr != nil || gotTorn || !reflect.DeepEqual(want, got) {
			t.Fatalf("p=%d: mapped read = (%d rows, torn=%v, ok=%v, %v)", p, len(got), gotTorn, ok, gerr)
		}
		var streamed []Row
		if err := StreamFile(path, func(batch []Row) error {
			streamed = append(streamed, batch...)
			return nil
		}); err != nil || !reflect.DeepEqual(want, streamed) {
			t.Fatalf("p=%d: mapped stream = (%d rows, %v)", p, len(streamed), err)
		}
		runs, err := ReadRuns(path, rows[0].Run, rows[len(rows)-1].Run)
		if err != nil || !reflect.DeepEqual(want, runs) {
			t.Fatalf("p=%d: ReadRuns = (%d rows, %v)", p, len(runs), err)
		}
	}
	t.Run("corrupt-classification", func(t *testing.T) {
		// A flipped byte inside the oversized (final) block must classify
		// identically on both paths: torn tail, not a panic or hard error.
		setParallelism(t, 4)
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		flipByte(t, path, st.Size()-10) // inside the oversized (final) data payload
		want, wantTorn, werr := readStreaming(t, path)
		got, gotTorn, ok, gerr := readBinaryFileFast(path, nil)
		if !ok {
			t.Fatal("mapped fast path unavailable")
		}
		if fmt.Sprint(werr) != fmt.Sprint(gerr) || wantTorn != gotTorn {
			t.Fatalf("mapped=(torn=%v,%v) streaming=(torn=%v,%v)", gotTorn, gerr, wantTorn, werr)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("mapped rows differ from streaming rows (%d vs %d)", len(got), len(want))
		}
	})
}

// TestSetReadParallelismZeroMeansGOMAXPROCS pins the --parallel flag
// contract: 0 is "GOMAXPROCS at call time", not serial.
func TestSetReadParallelismZeroMeansGOMAXPROCS(t *testing.T) {
	prev := readParallelism.Load()
	t.Cleanup(func() { readParallelism.Store(prev) })
	SetReadParallelism(0)
	if got, want := ReadParallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("ReadParallelism after SetReadParallelism(0) = %d, want GOMAXPROCS %d", got, want)
	}
	SetReadParallelism(3)
	if got := ReadParallelism(); got != 3 {
		t.Fatalf("ReadParallelism = %d, want 3", got)
	}
	SetReadParallelism(-2)
	if got := ReadParallelism(); got != 1 {
		t.Fatalf("ReadParallelism after negative set = %d, want 1", got)
	}
}

// TestOpenAppendEmptyBinaryRepairs is the regression test for the
// crash-before-first-flush artifact: OpenAppend on a 0-byte file at a binary
// path must start the log over instead of failing the resume.
func TestOpenAppendEmptyBinaryRepairs(t *testing.T) {
	for _, segRows := range []int{0, 4} {
		t.Run(fmt.Sprintf("segmentRows=%d", segRows), func(t *testing.T) {
			path := binPath(t, "empty.sharpb")
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
			w, n, err := OpenAppend(path, Options{FlushEvery: 1, SegmentRows: segRows})
			if err != nil {
				t.Fatalf("OpenAppend on 0-byte log: %v", err)
			}
			if n != 0 {
				t.Fatalf("rows = %d, want 0", n)
			}
			rows := sampleRows(5)
			if err := w.WriteAll(rows); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(path)
			if err != nil || !reflect.DeepEqual(rows, got) {
				t.Fatalf("ReadFile after repair = (%d rows, %v)", len(got), err)
			}
		})
	}
	t.Run("read-and-repair-surfaces", func(t *testing.T) {
		// The resume flow hits TruncateTrailingRun, ReadFile, and ScanFile
		// before OpenAppend: each must treat the 0-byte artifact as an empty
		// log, not a malformed one.
		path := binPath(t, "empty2.sharpb")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if rows, lastRun, torn, err := ScanFile(path); rows != 0 || lastRun != 0 || torn || err != nil {
			t.Fatalf("ScanFile = (%d, %d, %v, %v), want (0, 0, false, nil)", rows, lastRun, torn, err)
		}
		if got, err := ReadFile(path); len(got) != 0 || err != nil {
			t.Fatalf("ReadFile = (%d rows, %v), want empty", len(got), err)
		}
		if err := StreamFile(path, func([]Row) error { return errors.New("no batches expected") }); err != nil {
			t.Fatalf("StreamFile = %v, want nil", err)
		}
		if rows, dropped, err := TruncateTrailingRun(path); rows != 0 || dropped != 0 || err != nil {
			t.Fatalf("TruncateTrailingRun = (%d, %d, %v), want (0, 0, nil)", rows, dropped, err)
		}
		if err := TruncateRows(path, 0); err != nil {
			t.Fatalf("TruncateRows(0) = %v, want nil", err)
		}
		if err := TruncateRows(path, 3); err == nil {
			t.Fatal("TruncateRows(3) on empty artifact succeeded, want error")
		}
	})
	t.Run("csv-still-errors", func(t *testing.T) {
		// A 0-byte CSV log still fails with the historical message: there is
		// no header to validate, and CSV logs have no crash-artifact excuse
		// (the header is written before any row).
		path := binPath(t, "empty.csv")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := OpenAppend(path, Options{})
		if err == nil || !strings.Contains(err.Error(), "header") {
			t.Fatalf("err = %v, want a header error", err)
		}
		if _, err := ReadFile(path); err == nil {
			t.Fatal("ReadFile on 0-byte CSV succeeded, want header error")
		}
	})
}
