//go:build !unix

package record

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform has a real mmap; without it
// every mapped-read entry point falls back to the streaming scanner, which
// preserves behavior exactly (just without the zero-copy fast path).
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, func(), error) {
	return nil, nil, errors.New("record: mmap unsupported on this platform")
}
