package record

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// chop truncates the file to size bytes (simulating a crash mid-write).
func chop(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

// flipByte XORs one byte of the file at off.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// binLayout writes rows with one row per block (FlushEvery 1) and returns
// the frame offsets of every data block, so tests can surgically damage a
// chosen block.
func binLayout(t *testing.T, path string, rows []Row) []int64 {
	t.Helper()
	writeBinary(t, path, rows, Options{FlushEvery: 1})
	os.Remove(path + binIndexSuffix) // tests control index presence explicitly
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, _, err := scanBinary(f, false)
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]int64, len(sc.blocks))
	for i, b := range sc.blocks {
		offs[i] = b.off
	}
	return offs
}

func TestBinaryTornTailRepair(t *testing.T) {
	all := runRows(6, 2)
	for _, tc := range []struct {
		name string
		cut  func(path string, offs []int64, size int64) int64 // returns new size
	}{
		{"mid-frame", func(path string, offs []int64, size int64) int64 { return offs[len(offs)-1] + 7 }},
		{"mid-payload", func(path string, offs []int64, size int64) int64 { return size - 30 }},
		{"frame-only", func(path string, offs []int64, size int64) int64 { return offs[len(offs)-1] + binFrameLen }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := binPath(t, "torn.sharpb")
			offs := binLayout(t, path, all)
			st, _ := os.Stat(path)
			chop(t, path, tc.cut(path, offs, st.Size()))

			rows, lastRun, torn, err := ScanFile(path)
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			if !torn || rows != 11 || lastRun != 6 {
				t.Fatalf("scan = (%d,%d,%v), want (11,6,true)", rows, lastRun, torn)
			}
			w, n, err := OpenAppend(path, Options{FlushEvery: 1})
			if err != nil {
				t.Fatal(err)
			}
			if n != 11 {
				t.Fatalf("OpenAppend rows = %d, want 11", n)
			}
			if err := w.Write(all[11]); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(all, got) {
				t.Fatal("repaired+appended log differs from uninterrupted rows")
			}
		})
	}
}

func TestBinaryFinalBlockCRCDamageIsTorn(t *testing.T) {
	// A checksum mismatch on the file's final block with nothing after it is
	// indistinguishable from a torn disk write: repairable.
	path := binPath(t, "crcfinal.sharpb")
	all := runRows(5, 2)
	offs := binLayout(t, path, all)
	flipByte(t, path, offs[len(offs)-1]+binFrameLen+3) // payload byte of last block
	rows, _, torn, err := ScanFile(path)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if !torn || rows != 9 {
		t.Fatalf("scan = (%d, torn=%v), want (9, true)", rows, torn)
	}
	if _, n, err := OpenAppend(path, Options{}); err != nil || n != 9 {
		t.Fatalf("OpenAppend = (%d, %v)", n, err)
	}
}

func TestBinaryInteriorCorruptionRejected(t *testing.T) {
	for _, tc := range []struct {
		name string
		hurt func(t *testing.T, path string, offs []int64)
	}{
		{"payload-crc", func(t *testing.T, path string, offs []int64) {
			flipByte(t, path, offs[2]+binFrameLen+5)
		}},
		{"frame-crc", func(t *testing.T, path string, offs []int64) {
			flipByte(t, path, offs[2]+2) // row-count byte, caught by the frame CRC
		}},
		{"bad-kind", func(t *testing.T, path string, offs []int64) {
			f, _ := os.OpenFile(path, os.O_RDWR, 0)
			defer f.Close()
			f.WriteAt([]byte{0x7e}, offs[2])
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := binPath(t, "corrupt.sharpb")
			offs := binLayout(t, path, runRows(6, 2))
			tc.hurt(t, path, offs)
			if _, _, _, err := ScanFile(path); err == nil {
				t.Fatal("ScanFile accepted interior corruption")
			} else if !strings.Contains(err.Error(), "corrupt block") {
				t.Fatalf("unexpected error: %v", err)
			}
			if _, _, err := OpenAppend(path, Options{}); err == nil {
				t.Fatal("OpenAppend accepted interior corruption")
			}
			if _, err := ReadFile(path); err == nil {
				t.Fatal("ReadFile accepted interior corruption")
			}
		})
	}
}

func TestBinaryStaleIndexFallsBackToScan(t *testing.T) {
	path := binPath(t, "stale.sharpb")
	all := runRows(6, 2)
	writeBinary(t, path, all, Options{FlushEvery: 1})

	t.Run("kill-after-append", func(t *testing.T) {
		// Append without Close (as a crash would): the on-disk index still
		// describes the shorter file and must be ignored.
		w, _, err := OpenAppend(path, Options{FlushEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		extra := sampleRows(1)[0]
		extra.Run = 7
		if err := w.Write(extra); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil { // rows reach the OS, index does not
			t.Fatal(err)
		}
		w.bin.f.Close() // simulate kill -9: no Close, no index rewrite
		rows, lastRun, torn, err := ScanFile(path)
		if err != nil || torn {
			t.Fatalf("scan: rows=%d torn=%v err=%v", rows, torn, err)
		}
		if rows != 13 || lastRun != 7 {
			t.Fatalf("stale index served: got (%d,%d), want (13,7)", rows, lastRun)
		}
	})

	t.Run("truncated-index", func(t *testing.T) {
		idx := path + binIndexSuffix
		writeBinary(t, path, all, Options{})
		buf, err := os.ReadFile(idx)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(idx, buf[:len(buf)-6], 0o644); err != nil {
			t.Fatal(err)
		}
		rows, lastRun, torn, err := ScanFile(path)
		if err != nil || torn || rows != 12 || lastRun != 6 {
			t.Fatalf("scan with truncated index = (%d,%d,%v,%v)", rows, lastRun, torn, err)
		}
	})

	t.Run("corrupt-index-crc", func(t *testing.T) {
		writeBinary(t, path, all, Options{})
		flipByte(t, path+binIndexSuffix, binIndexLen-2)
		rows, _, _, err := ScanFile(path)
		if err != nil || rows != 12 {
			t.Fatalf("scan with corrupt index = (%d,%v)", rows, err)
		}
	})

	t.Run("index-from-other-content", func(t *testing.T) {
		// Rewrite the data file with different rows of the same byte length:
		// same size, different tail bytes -> index must be detected stale.
		writeBinary(t, path, all, Options{})
		ix := loadBinIndex(path)
		if ix == nil {
			t.Fatal("index missing")
		}
		changed := make([]Row, len(all))
		copy(changed, all)
		changed[len(changed)-1].Value += 1000
		if err := writeRowsAtomicBinary(path+".other", changed); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path + ".other")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if ix.fresh(f) {
			t.Fatal("index fresh against different content")
		}
	})
}

func TestBinaryEmptyAndHeaderOnly(t *testing.T) {
	// A log holding only the magic (crashed before the first flush) scans
	// clean and appends fine.
	path := binPath(t, "empty.sharpb")
	writeBinary(t, path, nil, Options{})
	rows, lastRun, torn, err := ScanFile(path)
	if err != nil || torn || rows != 0 || lastRun != 0 {
		t.Fatalf("empty scan = (%d,%d,%v,%v)", rows, lastRun, torn, err)
	}
	n, dropped, err := TruncateTrailingRun(path)
	if err != nil || n != 0 || dropped != 0 {
		t.Fatalf("TruncateTrailingRun on empty = (%d,%d,%v)", n, dropped, err)
	}
	// A file shorter than the magic is not a binary log; it falls to the CSV
	// reader and fails like a garbage CSV always has.
	short := binPath(t, "short.sharpb")
	os.WriteFile(short, []byte("SHA"), 0o644)
	if _, _, _, err := ScanFile(short); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestBinaryTruncateTrailingRunAfterTorn(t *testing.T) {
	// Crash mid-run: torn tail plus a possibly-incomplete final run — the
	// hard-crash recovery path must drop both.
	path := binPath(t, "hard.sharpb")
	all := runRows(5, 3)
	offs := binLayout(t, path, all)
	// Cut inside the payload of the second row of run 5 (rows are 1/block).
	chop(t, path, offs[13]+binFrameLen+10)
	rows, dropped, err := TruncateTrailingRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 12 || dropped != 5 {
		t.Fatalf("TruncateTrailingRun = (%d,%d), want (12,5)", rows, dropped)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all[:12], got) {
		t.Fatal("retained prefix differs")
	}
	// And the rewritten index must be immediately valid.
	f, _ := os.Open(path)
	defer f.Close()
	if ix := loadBinIndex(path); ix == nil || !ix.fresh(f) || ix.rows != 12 {
		t.Fatalf("index after repair = %+v", ix)
	}
}
