// Segmented binary logs. A single-file .sharpb log makes every truncation,
// repair, and resume touch (or rewrite) one ever-growing file; at the 10⁸-row
// scale the ROADMAP targets, that means multi-gigabyte scans for an
// operation that only concerns the last few thousand rows. A segmented log
// replaces the file at <path> with a small CRC-guarded manifest and rolls
// the row stream into self-contained segments under <path>.seg/:
//
//	manifest := magic "SHARPSG1" | crc u32 | payload      (at <path>)
//	payload  := segRows u64 | count u64 |
//	            count × (rows u64 | lastRun u64 | runStart u64 | bytes u64)
//	segment  := <path>.seg/NNNN.sharpb                    (NNNN = %04d)
//
// All integers little-endian; crc is CRC-32 (IEEE) over the payload. The
// manifest lists only *sealed* segments (0..count-1), which are immutable;
// segment NNNN=count is the active tail, examined and repaired by the
// ordinary single-file machinery (scan, sidecar index, torn-tail truncate).
// Each segment is a complete .sharpb file with its own magic and a re-based
// dictionary, so any segment decodes in isolation.
//
// Segments roll only at run transitions once the active segment reaches
// segRows rows: a run never spans segments, so TruncateTrailingRun and crash
// repair touch exactly one segment file, and the manifest is rewritten
// (atomically, via fsx) only when a segment seals. A damaged manifest is
// rebuilt by scanning the segments: a torn or corrupt *sealed* segment is
// hard corruption (exactly like an interior block of a single-file log),
// while the last segment stays active and keeps its repairability.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sharp/internal/fsx"
)

const (
	segMagic     = "SHARPSG1" // 8 bytes, same length as binMagic
	segDirSuffix = ".seg"
	// defaultSegmentRows bounds segments of a log whose manifest predates a
	// configured roll size (or was rebuilt without one): ~4M rows keeps a
	// segment near 256 MiB at 68 B/row.
	defaultSegmentRows = 4 << 20

	segEntryLen  = 32
	segHeaderLen = 8 + 4 + 16 // magic + crc + (segRows, count)
)

func segDir(path string) string { return path + segDirSuffix }

func segPath(path string, i int) string {
	return filepath.Join(segDir(path), fmt.Sprintf("%04d%s", i, BinaryExt))
}

func hasSegDir(path string) bool {
	st, err := os.Stat(segDir(path))
	return err == nil && st.IsDir()
}

// activeSegMissing reports whether the active segment at sp is absent or a
// 0-byte crash artifact. createBinary only buffers the magic, so a kill -9
// between segment creation and the first flush leaves an empty file; like the
// single-file emptyBinaryArtifact case, it holds zero durable rows and every
// surface treats it exactly like a segment that never came to exist.
func activeSegMissing(sp string) bool {
	st, err := os.Stat(sp)
	return os.IsNotExist(err) || (err == nil && st.Size() == 0)
}

// segEntry describes one sealed (immutable) segment.
type segEntry struct {
	rows     int   // data rows in the segment
	lastRun  int   // run index of its final row
	runStart int   // local row index where that final run begins
	bytes    int64 // segment file length (sealed segments are never torn)
}

// segManifest is the decoded manifest of a segmented log.
type segManifest struct {
	segRows int
	entries []segEntry
}

// sealedRows is the total row count across sealed segments.
func (m *segManifest) sealedRows() int {
	n := 0
	for _, e := range m.entries {
		n += e.rows
	}
	return n
}

// encodeManifest renders the manifest wire format.
func encodeManifest(m *segManifest) []byte {
	buf := make([]byte, segHeaderLen+segEntryLen*len(m.entries))
	copy(buf, segMagic)
	le := binary.LittleEndian
	p := buf[12:]
	le.PutUint64(p[0:], uint64(m.segRows))
	le.PutUint64(p[8:], uint64(len(m.entries)))
	for i, e := range m.entries {
		q := p[16+segEntryLen*i:]
		le.PutUint64(q[0:], uint64(e.rows))
		le.PutUint64(q[8:], uint64(int64(e.lastRun)))
		le.PutUint64(q[16:], uint64(e.runStart))
		le.PutUint64(q[24:], uint64(e.bytes))
	}
	le.PutUint32(buf[8:], crc32.Checksum(p, binCRC))
	return buf
}

// parseManifest decodes and validates manifest bytes. Any inconsistency —
// short file, bad magic, checksum mismatch, implausible counts — is an
// error; callers respond by rebuilding from the segments themselves.
func parseManifest(data []byte) (*segManifest, error) {
	if len(data) < segHeaderLen || string(data[:8]) != segMagic {
		return nil, errors.New("record: bad segment manifest magic")
	}
	le := binary.LittleEndian
	p := data[12:]
	if le.Uint32(data[8:]) != crc32.Checksum(p, binCRC) {
		return nil, errors.New("record: segment manifest checksum mismatch")
	}
	segRows := int64(le.Uint64(p[0:]))
	count := int64(le.Uint64(p[8:]))
	if segRows < 0 || count < 0 || count > int64(len(p)) || int64(len(p)) != 16+segEntryLen*count {
		return nil, errors.New("record: implausible segment manifest")
	}
	m := &segManifest{segRows: int(segRows)}
	for i := int64(0); i < count; i++ {
		q := p[16+segEntryLen*i:]
		e := segEntry{
			rows:     int(int64(le.Uint64(q[0:]))),
			lastRun:  int(int64(le.Uint64(q[8:]))),
			runStart: int(int64(le.Uint64(q[16:]))),
			bytes:    int64(le.Uint64(q[24:])),
		}
		if e.rows < 0 || e.runStart < 0 || (e.rows > 0 && e.runStart >= e.rows) || e.bytes < int64(len(binMagic)) {
			return nil, errors.New("record: implausible segment manifest entry")
		}
		m.entries = append(m.entries, e)
	}
	return m, nil
}

// writeManifest atomically replaces the manifest at path.
func writeManifest(path string, m *segManifest) error {
	return fsx.WriteFile(path, encodeManifest(m), 0o644)
}

// loadManifest reads the manifest at path, rebuilding it from the segment
// directory when the bytes are damaged. rebuilt tells writer-side callers to
// persist the repair; read-only callers leave the damage in place.
func loadManifest(path string) (m *segManifest, rebuilt bool, err error) {
	if data, rerr := os.ReadFile(path); rerr == nil {
		if m, perr := parseManifest(data); perr == nil {
			return m, false, nil
		}
	}
	m, err = rebuildManifest(path)
	return m, true, err
}

// rebuildManifest reconstructs the manifest by scanning the segment
// directory: every segment but the last must scan clean and untorn (sealed
// segments are immutable, so damage there is hard corruption), and the last
// segment is left active.
func rebuildManifest(path string) (*segManifest, error) {
	des, err := os.ReadDir(segDir(path))
	if err != nil {
		return nil, fmt.Errorf("record: segmented log %s: %w", path, err)
	}
	var idxs []int
	for _, de := range des {
		name := de.Name()
		if !strings.HasSuffix(name, BinaryExt) {
			continue
		}
		num := strings.TrimSuffix(name, BinaryExt)
		if len(num) != 4 {
			continue
		}
		i, aerr := strconv.Atoi(num)
		if aerr != nil {
			continue
		}
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for k, i := range idxs {
		if i != k {
			return nil, fmt.Errorf("record: segmented log %s: segment %04d missing", path, k)
		}
	}
	m := &segManifest{}
	for k := 0; k+1 < len(idxs); k++ { // seal all but the last
		sp := segPath(path, k)
		f, oerr := os.Open(sp)
		if oerr != nil {
			return nil, oerr
		}
		sc, _, serr := scanBinary(f, false)
		f.Close()
		if serr != nil {
			return nil, fmt.Errorf("record: sealed segment %s: %v", filepath.Base(sp), serr)
		}
		if sc.torn {
			return nil, fmt.Errorf("record: sealed segment %s: torn interior segment", filepath.Base(sp))
		}
		m.entries = append(m.entries, segEntry{rows: sc.rows, lastRun: sc.lastRun, runStart: sc.runStartRows, bytes: sc.dataEnd})
	}
	return m, nil
}

// ---- read-side dispatch targets ----

// scanSegmented is the ScanFile implementation for segmented logs: the
// manifest answers for sealed segments in O(1); only the active segment
// (itself O(1) under a fresh sidecar index) is examined.
func scanSegmented(path string) (rows, lastRun int, torn bool, err error) {
	m, _, err := loadManifest(path)
	if err != nil {
		return 0, 0, false, err
	}
	var ar, alr int
	var atorn bool
	if ap := segPath(path, len(m.entries)); !activeSegMissing(ap) {
		if ar, alr, atorn, err = scanBinaryFile(ap); err != nil {
			if !os.IsNotExist(err) {
				return 0, 0, false, err
			}
			ar, alr, atorn = 0, 0, false
		}
	}
	lastRun = alr
	if ar == 0 && len(m.entries) > 0 {
		lastRun = m.entries[len(m.entries)-1].lastRun
	}
	return m.sealedRows() + ar, lastRun, atorn, nil
}

// readSegmentInto decodes one segment file, appending to dst, via the mapped
// fast path when available.
func readSegmentInto(sp string, dst []Row) ([]Row, bool, error) {
	if rows, torn, ok, err := readBinaryFileFast(sp, dst); ok {
		return rows, torn, err
	}
	f, err := os.Open(sp)
	if err != nil {
		return dst, false, err
	}
	defer f.Close()
	sc, rows, err := scanBinaryDst(f, dst)
	return rows, sc.torn, err
}

// readSegmented decodes a whole segmented log, appending to dst. Sealed
// segments must decode cleanly to exactly their manifest row count; a torn
// tail in the active segment is silently dropped, as in single-file
// ReadFile.
func readSegmented(path string, dst []Row) ([]Row, error) {
	m, _, err := loadManifest(path)
	if err != nil {
		return nil, err
	}
	if total := len(dst) + m.sealedRows(); cap(dst) < total {
		grown := make([]Row, len(dst), total+total/8+binBlockRows)
		copy(grown, dst)
		dst = grown
	}
	for i, e := range m.entries {
		base := len(dst)
		var torn bool
		dst, torn, err = readSegmentInto(segPath(path, i), dst)
		if err != nil {
			return nil, err
		}
		if torn || len(dst)-base != e.rows {
			return nil, fmt.Errorf("record: sealed segment %04d%s has %d rows (torn=%v), manifest says %d",
				i, BinaryExt, len(dst)-base, torn, e.rows)
		}
	}
	if ap := segPath(path, len(m.entries)); !activeSegMissing(ap) {
		base := len(dst)
		dst, _, err = readSegmentInto(ap, dst)
		if os.IsNotExist(err) {
			return dst[:base], nil
		}
		return dst, err
	}
	return dst, nil
}

// streamSegment streams one segment file's rows into sink, counting them.
func streamSegment(sp string, sink func([]Row) error) (int, bool, error) {
	n := 0
	counting := func(batch []Row) error { n += len(batch); return sink(batch) }
	ml, err := openMapped(sp)
	if err != nil {
		return 0, false, err
	}
	if ml != nil {
		defer ml.unmap()
		torn, err := streamMapped(ml.data, counting)
		return n, torn, err
	}
	f, err := os.Open(sp)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	sc, err := scanBinaryStream(f, counting)
	return n, sc.torn, err
}

// streamSegmented is the StreamFile implementation for segmented logs.
func streamSegmented(path string, sink func([]Row) error) error {
	m, _, err := loadManifest(path)
	if err != nil {
		return err
	}
	for i, e := range m.entries {
		n, torn, err := streamSegment(segPath(path, i), sink)
		if err != nil {
			return err
		}
		if torn || n != e.rows {
			return fmt.Errorf("record: sealed segment %04d%s has %d rows (torn=%v), manifest says %d",
				i, BinaryExt, n, torn, e.rows)
		}
	}
	if ap := segPath(path, len(m.entries)); !activeSegMissing(ap) {
		if _, _, err := streamSegment(ap, sink); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// readRunsSegmented is the ranged read over a segmented log.
func readRunsSegmented(path string, lo, hi int) ([]Row, error) {
	m, _, err := loadManifest(path)
	if err != nil {
		return nil, err
	}
	var out []Row
	for i := 0; i <= len(m.entries); i++ {
		sp := segPath(path, i)
		active := i == len(m.entries)
		if active && activeSegMissing(sp) {
			break
		}
		ml, err := openMapped(sp)
		if err == nil && ml != nil {
			out, err = func() ([]Row, error) {
				defer ml.unmap()
				return readRunsMapped(ml.data, lo, hi, out)
			}()
		} else if err == nil {
			_, _, err = streamSegment(sp, func(batch []Row) error {
				for j := range batch {
					if batch[j].Run >= lo && batch[j].Run <= hi {
						out = append(out, batch[j])
					}
				}
				return nil
			})
		}
		if err != nil {
			// Only the active segment may legitimately be absent; a missing
			// sealed segment is hard corruption, never a silent partial read.
			if active && os.IsNotExist(err) {
				break
			}
			return nil, err
		}
	}
	return out, nil
}

// ---- writer ----

// segWriter appends rows to a segmented log: a binWriter on the active
// segment plus the manifest of sealed ones. Rolls happen only at run
// transitions once the active segment holds at least segRows rows, so a run
// never spans segments.
type segWriter struct {
	path    string
	opts    Options
	segRows int
	m       *segManifest
	bw      *binWriter
	local   int // rows in the active segment
	lastRun int // run index of the most recently appended row
}

// createSegmented starts a fresh segmented log at path (replacing any
// previous log or segment directory there).
func createSegmented(path string, o Options) (*Writer, error) {
	segRows := o.SegmentRows
	if segRows <= 0 {
		segRows = defaultSegmentRows
	}
	if err := os.RemoveAll(segDir(path)); err != nil {
		return nil, err
	}
	os.Remove(path + binIndexSuffix)
	if err := os.MkdirAll(segDir(path), 0o755); err != nil {
		return nil, err
	}
	m := &segManifest{segRows: segRows}
	if err := writeManifest(path, m); err != nil {
		return nil, err
	}
	bw, err := createBinary(segPath(path, 0), o)
	if err != nil {
		return nil, err
	}
	return &Writer{seg: &segWriter{path: path, opts: o, segRows: segRows, m: m, bw: bw}, opts: o}, nil
}

// add buffers one row, sealing the active segment first when it is full and
// the row starts a new run.
func (w *segWriter) add(r *Row) error {
	if w.local >= w.segRows && r.Run != w.lastRun {
		if err := w.roll(); err != nil {
			return err
		}
	}
	if err := w.bw.add(r); err != nil {
		return err
	}
	w.local++
	w.lastRun = r.Run
	return nil
}

// roll seals the active segment and starts the next one. The ordering is
// crash-safe: the segment is completed (flush + sidecar index + close)
// before the manifest records it, and the manifest records it before the
// next segment exists — a crash between any two steps leaves a log that
// OpenAppend repairs without losing rows.
func (w *segWriter) roll() error {
	if err := w.bw.close(); err != nil {
		return err
	}
	w.m.entries = append(w.m.entries, segEntry{
		rows: w.bw.rows, lastRun: w.bw.lastRun, runStart: w.bw.runStartRows, bytes: w.bw.off,
	})
	if err := writeManifest(w.path, w.m); err != nil {
		return err
	}
	bw, err := createBinary(segPath(w.path, len(w.m.entries)), w.opts)
	if err != nil {
		return err
	}
	w.bw = bw
	w.local = 0
	return nil
}

func (w *segWriter) flush() error { return w.bw.flush() }

// close closes the active segment; the manifest is already current (it only
// changes when a segment seals).
func (w *segWriter) close() error { return w.bw.close() }

// openAppendSegmented opens a segmented log for continuation: it repairs the
// manifest if damaged, then validates and repairs only the active segment.
func openAppendSegmented(path string, o Options) (*Writer, int, error) {
	m, rebuilt, err := loadManifest(path)
	if err != nil {
		return nil, 0, err
	}
	segRows := o.SegmentRows
	if segRows <= 0 {
		segRows = m.segRows
	}
	if segRows <= 0 {
		segRows = defaultSegmentRows
	}
	// Persist not just after a rebuild but whenever the effective roll size
	// differs from the stored one (a rebuilt manifest persisted by a repair
	// records segRows 0): the manifest must describe how the writer actually
	// rolls, so a repaired-and-resumed log stays byte-identical to an
	// uninterrupted one.
	if m.segRows != segRows {
		m.segRows = segRows
		rebuilt = true
	}
	if rebuilt {
		if err := writeManifest(path, m); err != nil {
			return nil, 0, err
		}
	}
	ap := segPath(path, len(m.entries))
	var bw *binWriter
	local := 0
	if activeSegMissing(ap) {
		// Crash between sealing a segment and creating its successor (the
		// active segment never came to exist) or before its first buffer
		// flush (a 0-byte artifact): no rows were durable. Start it empty.
		if err := os.MkdirAll(segDir(path), 0o755); err != nil {
			return nil, 0, err
		}
		if bw, err = createBinary(ap, o); err != nil {
			return nil, 0, err
		}
	} else if bw, local, err = openAppendBinaryCore(ap, o); err != nil {
		return nil, 0, err
	}
	lastRun := bw.lastRun
	if local == 0 && len(m.entries) > 0 {
		lastRun = m.entries[len(m.entries)-1].lastRun
	}
	total := m.sealedRows() + local
	sw := &segWriter{path: path, opts: o, segRows: segRows, m: m, bw: bw, local: local, lastRun: lastRun}
	return &Writer{seg: sw, opts: o, wroteHeader: true, rows: total}, total, nil
}

// truncateRowsSegmented cuts a segmented log to its first n rows. A cut
// inside a sealed segment drops every later segment, unseals it, and cuts it
// with the single-file machinery; a cut in the active segment touches only
// that file.
func truncateRowsSegmented(path string, n int) error {
	m, rebuilt, err := loadManifest(path)
	if err != nil {
		return err
	}
	if rebuilt {
		if err := writeManifest(path, m); err != nil {
			return err
		}
	}
	start := 0
	for i, e := range m.entries {
		if n < start+e.rows {
			for j := len(m.entries); j > i; j-- {
				os.Remove(segPath(path, j))
				os.Remove(segPath(path, j) + binIndexSuffix)
			}
			m.entries = m.entries[:i]
			if err := writeManifest(path, m); err != nil {
				return err
			}
			return truncateRowsBinary(segPath(path, i), n-start)
		}
		start += e.rows
	}
	ap := segPath(path, len(m.entries))
	if activeSegMissing(ap) {
		if n == start {
			return nil
		}
		return fmt.Errorf("record: truncate to %d rows: only %d available", n, start)
	}
	return truncateRowsBinary(ap, n-start)
}

// truncateTrailingRunSegmented drops the final (possibly incomplete) run of
// a segmented log. Runs never span segments, so the cut touches exactly one
// segment: the active one, or — when the active segment is empty — the last
// sealed segment, which is unsealed first.
func truncateTrailingRunSegmented(path string) (rows, droppedRun int, err error) {
	m, rebuilt, err := loadManifest(path)
	if err != nil {
		return 0, 0, err
	}
	if rebuilt {
		if err := writeManifest(path, m); err != nil {
			return 0, 0, err
		}
	}
	ap := segPath(path, len(m.entries))
	present, ar := !activeSegMissing(ap), 0
	if present {
		var aerr error
		if ar, _, _, aerr = scanBinaryFile(ap); aerr != nil {
			if !os.IsNotExist(aerr) {
				return 0, 0, aerr
			}
			present = false
		}
	}
	if present && ar > 0 {
		lr, dropped, err := truncateTrailingRunBinary(ap)
		if err != nil {
			return 0, 0, err
		}
		return m.sealedRows() + lr, dropped, nil
	}
	if len(m.entries) == 0 {
		if present {
			// Zero valid rows but the file exists (possibly torn): trim it.
			return truncateTrailingRunBinary(ap)
		}
		return 0, 0, nil
	}
	// Empty (or missing) active segment: the trailing run is the last sealed
	// segment's final run. Unseal it and cut there.
	os.Remove(ap)
	os.Remove(ap + binIndexSuffix)
	last := len(m.entries) - 1
	m.entries = m.entries[:last]
	if err := writeManifest(path, m); err != nil {
		return 0, 0, err
	}
	lr, dropped, err := truncateTrailingRunBinary(segPath(path, last))
	if err != nil {
		return 0, 0, err
	}
	return m.sealedRows() + lr, dropped, nil
}
