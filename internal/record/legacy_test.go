package record

import (
	"strings"
	"testing"
	"time"
)

// legacyCSV is a log written before the status/attempt/error columns existed.
const legacyCSV = `timestamp,experiment,workload,backend,machine,day,run,instance,metric,value,unit
2024-01-02T03:04:05Z,exp,hotspot,sim,machine1,1,1,1,exec_time,3.14,seconds
2024-01-02T03:04:06Z,exp,hotspot,sim,machine1,1,2,1,exec_time,3.15,seconds
`

func TestReadLegacyLog(t *testing.T) {
	rows, err := Read(strings.NewReader(legacyCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Metric != "exec_time" || r.Value != 3.14 || r.Run != 1 {
		t.Fatalf("row = %+v", r)
	}
	// New columns default to zero values for legacy rows.
	if r.Status != "" || r.Attempt != 0 || r.Error != "" {
		t.Fatalf("legacy row grew data: %+v", r)
	}
}

func TestNewColumnsRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	in := Row{
		Timestamp:  time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC),
		Experiment: "exp", Workload: "w", Backend: "sim", Machine: "m1",
		Day: 1, Run: 2, Instance: 0,
		Metric: MetricError, Value: 1, Unit: "",
		Status: StatusError, Attempt: 3, Error: "backend degraded; giving up",
	}
	if err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	out := rows[0]
	if out.Status != StatusError || out.Attempt != 3 || out.Error != in.Error {
		t.Fatalf("round trip lost resilience columns: %+v", out)
	}
	if out.Instance != 0 {
		t.Fatalf("whole-run failure instance = %d", out.Instance)
	}
}

func TestFieldDocsCoverHeader(t *testing.T) {
	for _, col := range Header {
		if FieldDocs[col] == "" {
			t.Errorf("column %q undocumented", col)
		}
	}
}
