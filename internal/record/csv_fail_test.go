package record

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// failWriter accepts the first okBytes bytes, then fails every write.
type failWriter struct {
	okBytes int
	written int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.okBytes {
		return 0, errors.New("disk full")
	}
	w.written += len(p)
	return len(p), nil
}

// TestRowsCountsOnlySuccessfulWrites is the bugfix test: Rows() used to
// increment before handing the record to encoding/csv, so a failing sink
// still advanced the counter and the metadata reported rows that were never
// written. encoding/csv buffers ~4 KiB, so the row carries an error message
// larger than the buffer to force the underlying write during Write itself.
func TestRowsCountsOnlySuccessfulWrites(t *testing.T) {
	w := NewWriter(&failWriter{okBytes: 0})
	row := Row{
		Timestamp:  time.Unix(0, 0).UTC(),
		Experiment: "e", Workload: "w", Backend: "sim", Machine: "machine1",
		Day: 1, Run: 1, Instance: 1,
		Metric: MetricError, Value: 1, Unit: "count",
		Status: StatusError, Attempt: 1,
		Error: strings.Repeat("x", 8192), // exceeds csv/bufio buffering
	}
	if err := w.Write(row); err == nil {
		t.Fatal("Write against a failing sink returned nil error")
	}
	if got := w.Rows(); got != 0 {
		t.Errorf("Rows() = %d after a failed write, want 0", got)
	}
	// A healthy writer still counts.
	ok := NewWriter(&strings.Builder{})
	if err := ok.Write(row); err != nil {
		t.Fatal(err)
	}
	if got := ok.Rows(); got != 1 {
		t.Errorf("Rows() = %d after one successful write, want 1", got)
	}
}
