// Package randx provides deterministic random number generation and the
// synthetic distribution library used throughout SHARP.
//
// The paper (§IV-c) tunes its stopping-rule detection heuristics on ten
// synthetic distributions: normal, log-normal, uniform, log-uniform,
// logistic, bi-modal, multi-modal, autocorrelated sinusoidal, Cauchy, and
// constant. This package implements samplers for all of them, together with
// closed-form CDFs and quantile functions where they exist, so tests and the
// classifier can be validated against ground truth.
//
// All samplers are deterministic given a seed: experiments are reproducible
// bit-for-bit across runs, which is itself one of SHARP's design goals.
package randx

import (
	"math"
	"math/rand/v2"
)

// RNG is the random source used by every sampler in SHARP. It wraps a
// PCG-seeded *rand.Rand so that a (seed1, seed2) pair fully determines every
// downstream sample.
type RNG struct {
	*rand.Rand
}

// New returns a deterministic RNG seeded from a single uint64 seed. The
// second PCG word is derived by SplitMix64 so that nearby seeds produce
// uncorrelated streams.
func New(seed uint64) *RNG {
	return &RNG{rand.New(rand.NewPCG(seed, splitmix64(seed)))}
}

// splitmix64 is the SplitMix64 output function, used only for seed expansion.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fork derives an independent child RNG. The child stream is a deterministic
// function of the parent's state, so forking preserves reproducibility while
// decoupling consumers (e.g. one stream per benchmark per day).
func (r *RNG) Fork() *RNG {
	return New(r.Uint64())
}

// Sampler produces a stream of float64 observations. Samplers may be
// stateful (e.g. the autocorrelated sinusoidal distribution), so one Sampler
// must not be shared between goroutines.
type Sampler interface {
	// Name identifies the distribution family, e.g. "normal" or "bimodal".
	Name() string
	// Next draws the next observation.
	Next() float64
}

// Dist describes a distribution with a closed-form CDF. Samplers that also
// implement Dist can be verified exactly (e.g. by Kolmogorov-Smirnov tests
// against their own CDF).
type Dist interface {
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-th quantile, p in (0, 1).
	Quantile(p float64) float64
}

// SampleN draws n observations from s into a fresh slice.
func SampleN(s Sampler, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// --- Normal ---

// Normal is the Gaussian distribution N(Mu, Sigma^2).
type Normal struct {
	Mu, Sigma float64
	rng       *RNG
}

// NewNormal returns a Normal sampler.
func NewNormal(rng *RNG, mu, sigma float64) *Normal {
	return &Normal{Mu: mu, Sigma: sigma, rng: rng}
}

// Name implements Sampler.
func (d *Normal) Name() string { return "normal" }

// Next implements Sampler.
func (d *Normal) Next() float64 { return d.Mu + d.Sigma*d.rng.NormFloat64() }

// CDF implements Dist.
func (d *Normal) CDF(x float64) float64 { return NormalCDF(x, d.Mu, d.Sigma) }

// Quantile implements Dist.
func (d *Normal) Quantile(p float64) float64 { return d.Mu + d.Sigma*NormalQuantile(p) }

// NormalCDF returns the CDF of N(mu, sigma^2) at x.
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the quantile function of the standard normal
// distribution, using Acklam's rational approximation refined by one
// Halley step. Absolute error is below 1e-9 over (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against the true CDF.
	e := NormalCDF(x, 0, 1) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// --- LogNormal ---

// LogNormal is the distribution of exp(N(Mu, Sigma^2)).
type LogNormal struct {
	Mu, Sigma float64
	rng       *RNG
}

// NewLogNormal returns a LogNormal sampler.
func NewLogNormal(rng *RNG, mu, sigma float64) *LogNormal {
	return &LogNormal{Mu: mu, Sigma: sigma, rng: rng}
}

// Name implements Sampler.
func (d *LogNormal) Name() string { return "lognormal" }

// Next implements Sampler.
func (d *LogNormal) Next() float64 { return math.Exp(d.Mu + d.Sigma*d.rng.NormFloat64()) }

// CDF implements Dist.
func (d *LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalCDF(math.Log(x), d.Mu, d.Sigma)
}

// Quantile implements Dist.
func (d *LogNormal) Quantile(p float64) float64 {
	return math.Exp(d.Mu + d.Sigma*NormalQuantile(p))
}

// --- Uniform ---

// Uniform is the continuous uniform distribution on [A, B).
type Uniform struct {
	A, B float64
	rng  *RNG
}

// NewUniform returns a Uniform sampler.
func NewUniform(rng *RNG, a, b float64) *Uniform {
	return &Uniform{A: a, B: b, rng: rng}
}

// Name implements Sampler.
func (d *Uniform) Name() string { return "uniform" }

// Next implements Sampler.
func (d *Uniform) Next() float64 { return d.A + (d.B-d.A)*d.rng.Float64() }

// CDF implements Dist.
func (d *Uniform) CDF(x float64) float64 {
	switch {
	case x < d.A:
		return 0
	case x >= d.B:
		return 1
	default:
		return (x - d.A) / (d.B - d.A)
	}
}

// Quantile implements Dist.
func (d *Uniform) Quantile(p float64) float64 { return d.A + p*(d.B-d.A) }

// --- LogUniform ---

// LogUniform is the distribution of exp(U(ln A, ln B)); A and B must be > 0.
type LogUniform struct {
	A, B float64
	rng  *RNG
}

// NewLogUniform returns a LogUniform sampler.
func NewLogUniform(rng *RNG, a, b float64) *LogUniform {
	return &LogUniform{A: a, B: b, rng: rng}
}

// Name implements Sampler.
func (d *LogUniform) Name() string { return "loguniform" }

// Next implements Sampler.
func (d *LogUniform) Next() float64 {
	la, lb := math.Log(d.A), math.Log(d.B)
	return math.Exp(la + (lb-la)*d.rng.Float64())
}

// CDF implements Dist.
func (d *LogUniform) CDF(x float64) float64 {
	switch {
	case x < d.A:
		return 0
	case x >= d.B:
		return 1
	default:
		return (math.Log(x) - math.Log(d.A)) / (math.Log(d.B) - math.Log(d.A))
	}
}

// Quantile implements Dist.
func (d *LogUniform) Quantile(p float64) float64 {
	la, lb := math.Log(d.A), math.Log(d.B)
	return math.Exp(la + p*(lb-la))
}

// --- Logistic ---

// Logistic is the logistic distribution with location Mu and scale S.
type Logistic struct {
	Mu, S float64
	rng   *RNG
}

// NewLogistic returns a Logistic sampler.
func NewLogistic(rng *RNG, mu, s float64) *Logistic {
	return &Logistic{Mu: mu, S: s, rng: rng}
}

// Name implements Sampler.
func (d *Logistic) Name() string { return "logistic" }

// Next implements Sampler.
func (d *Logistic) Next() float64 {
	u := d.rng.Float64()
	for u == 0 || u == 1 {
		u = d.rng.Float64()
	}
	return d.Mu + d.S*math.Log(u/(1-u))
}

// CDF implements Dist.
func (d *Logistic) CDF(x float64) float64 {
	return 1 / (1 + math.Exp(-(x-d.Mu)/d.S))
}

// Quantile implements Dist.
func (d *Logistic) Quantile(p float64) float64 {
	return d.Mu + d.S*math.Log(p/(1-p))
}

// --- Cauchy ---

// Cauchy is the Cauchy distribution with location X0 and scale Gamma. Its
// mean and variance are undefined, which is exactly why the paper includes
// it in the tuning set: it stresses stopping rules that assume convergence
// of the sample mean.
type Cauchy struct {
	X0, Gamma float64
	rng       *RNG
}

// NewCauchy returns a Cauchy sampler.
func NewCauchy(rng *RNG, x0, gamma float64) *Cauchy {
	return &Cauchy{X0: x0, Gamma: gamma, rng: rng}
}

// Name implements Sampler.
func (d *Cauchy) Name() string { return "cauchy" }

// Next implements Sampler.
func (d *Cauchy) Next() float64 {
	u := d.rng.Float64()
	for u == 0 || u == 1 {
		u = d.rng.Float64()
	}
	return d.X0 + d.Gamma*math.Tan(math.Pi*(u-0.5))
}

// CDF implements Dist.
func (d *Cauchy) CDF(x float64) float64 {
	return 0.5 + math.Atan((x-d.X0)/d.Gamma)/math.Pi
}

// Quantile implements Dist.
func (d *Cauchy) Quantile(p float64) float64 {
	return d.X0 + d.Gamma*math.Tan(math.Pi*(p-0.5))
}

// --- Constant ---

// Constant is the degenerate distribution that always returns C. A constant
// stream should trip every stopping rule immediately.
type Constant struct {
	C float64
}

// NewConstant returns a Constant sampler.
func NewConstant(c float64) *Constant { return &Constant{C: c} }

// Name implements Sampler.
func (d *Constant) Name() string { return "constant" }

// Next implements Sampler.
func (d *Constant) Next() float64 { return d.C }

// CDF implements Dist.
func (d *Constant) CDF(x float64) float64 {
	if x < d.C {
		return 0
	}
	return 1
}

// Quantile implements Dist.
func (d *Constant) Quantile(float64) float64 { return d.C }

// --- Mixture (bimodal / multimodal) ---

// Component is one weighted component of a Mixture.
type Component struct {
	Weight float64 // relative, need not sum to 1
	Dist   interface {
		Sampler
		Dist
	}
}

// Mixture is a finite mixture distribution; with two Gaussian components it
// is the "bi-modal" tuning distribution, with more it is "multi-modal".
type Mixture struct {
	name       string
	components []Component
	cum        []float64 // normalized cumulative weights
	rng        *RNG
}

// NewMixture builds a mixture from the given components. The name reported
// by Name is "bimodal" for two components and "multimodal" otherwise.
func NewMixture(rng *RNG, components ...Component) *Mixture {
	name := "multimodal"
	if len(components) == 2 {
		name = "bimodal"
	}
	total := 0.0
	for _, c := range components {
		total += c.Weight
	}
	cum := make([]float64, len(components))
	acc := 0.0
	for i, c := range components {
		acc += c.Weight / total
		cum[i] = acc
	}
	return &Mixture{name: name, components: components, cum: cum, rng: rng}
}

// NewBimodalNormal is a convenience constructor for the classic two-Gaussian
// mixture used in the paper's tuning set.
func NewBimodalNormal(rng *RNG, mu1, sigma1, mu2, sigma2, w1 float64) *Mixture {
	return NewMixture(rng,
		Component{Weight: w1, Dist: NewNormal(rng, mu1, sigma1)},
		Component{Weight: 1 - w1, Dist: NewNormal(rng, mu2, sigma2)},
	)
}

// NewMultimodalNormal builds an equally weighted mixture of Gaussians at the
// given means, all with the given sigma.
func NewMultimodalNormal(rng *RNG, sigma float64, mus ...float64) *Mixture {
	comps := make([]Component, len(mus))
	for i, mu := range mus {
		comps[i] = Component{Weight: 1, Dist: NewNormal(rng, mu, sigma)}
	}
	return NewMixture(rng, comps...)
}

// Name implements Sampler.
func (m *Mixture) Name() string { return m.name }

// Next implements Sampler.
func (m *Mixture) Next() float64 {
	u := m.rng.Float64()
	for i, c := range m.cum {
		if u <= c {
			return m.components[i].Dist.Next()
		}
	}
	return m.components[len(m.components)-1].Dist.Next()
}

// CDF implements Dist as the weighted sum of the component CDFs.
func (m *Mixture) CDF(x float64) float64 {
	prev := 0.0
	total := 0.0
	for i, c := range m.components {
		w := m.cum[i] - prev
		prev = m.cum[i]
		total += w * c.Dist.CDF(x)
	}
	return total
}

// Quantile implements Dist by bisecting the mixture CDF.
func (m *Mixture) Quantile(p float64) float64 {
	// Bracket using component quantiles.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.components {
		lo = math.Min(lo, c.Dist.Quantile(1e-9))
		hi = math.Max(hi, c.Dist.Quantile(1-1e-9))
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// --- Autocorrelated sinusoidal ---

// Sinusoidal generates an autocorrelated series: a sine wave of the given
// amplitude and period with additive Gaussian noise. It models periodic
// system interference (e.g. cron-like background activity) and exercises
// stopping rules that assume i.i.d. samples.
type Sinusoidal struct {
	Base, Amplitude, NoiseSigma float64
	Period                      float64 // in samples
	t                           int
	rng                         *RNG
}

// NewSinusoidal returns a Sinusoidal sampler starting at phase zero.
func NewSinusoidal(rng *RNG, base, amplitude, period, noiseSigma float64) *Sinusoidal {
	return &Sinusoidal{Base: base, Amplitude: amplitude, Period: period,
		NoiseSigma: noiseSigma, rng: rng}
}

// Name implements Sampler.
func (d *Sinusoidal) Name() string { return "sinusoidal" }

// Next implements Sampler.
func (d *Sinusoidal) Next() float64 {
	v := d.Base + d.Amplitude*math.Sin(2*math.Pi*float64(d.t)/d.Period) +
		d.NoiseSigma*d.rng.NormFloat64()
	d.t++
	return v
}

// --- AR(1) ---

// AR1 is a first-order autoregressive process x_t = Phi*x_{t-1} + eps. It is
// used in tests and ablations as a second autocorrelated workload shape.
type AR1 struct {
	Mu, Phi, Sigma float64
	prev           float64
	started        bool
	rng            *RNG
}

// NewAR1 returns an AR(1) sampler with stationary start.
func NewAR1(rng *RNG, mu, phi, sigma float64) *AR1 {
	return &AR1{Mu: mu, Phi: phi, Sigma: sigma, rng: rng}
}

// Name implements Sampler.
func (d *AR1) Name() string { return "ar1" }

// Next implements Sampler.
func (d *AR1) Next() float64 {
	if !d.started {
		// Draw from the stationary distribution.
		sd := d.Sigma / math.Sqrt(1-d.Phi*d.Phi)
		d.prev = d.Mu + sd*d.rng.NormFloat64()
		d.started = true
		return d.prev
	}
	d.prev = d.Mu + d.Phi*(d.prev-d.Mu) + d.Sigma*d.rng.NormFloat64()
	return d.prev
}

// TuningSet returns the ten synthetic distributions of §IV-c, freshly seeded
// from rng, in the order listed in the paper. These are the distributions on
// which SHARP's detection and stopping heuristics are tuned.
func TuningSet(rng *RNG) []Sampler {
	return []Sampler{
		NewNormal(rng.Fork(), 10, 1),
		NewLogNormal(rng.Fork(), 2, 0.5),
		NewUniform(rng.Fork(), 5, 15),
		NewLogUniform(rng.Fork(), 1, 100),
		NewLogistic(rng.Fork(), 10, 1),
		NewBimodalNormal(rng.Fork(), 8, 0.5, 12, 0.5, 0.5),
		NewMultimodalNormal(rng.Fork(), 0.4, 6, 10, 14, 18),
		NewSinusoidal(rng.Fork(), 10, 2, 50, 0.3),
		NewCauchy(rng.Fork(), 10, 1),
		NewConstant(10),
	}
}
