package randx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := SampleN(NewNormal(New(7), 0, 1), 100)
	b := SampleN(NewNormal(New(7), 0, 1), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(1)
	a := SampleN(NewNormal(r.Fork(), 0, 1), 50)
	b := SampleN(NewNormal(r.Fork(), 0, 1), 50)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("forked streams look identical: %d/50 equal", same)
	}
}

// ksAgainstCDF computes the one-sample KS statistic of data against cdf.
func ksAgainstCDF(data []float64, cdf func(float64) float64) float64 {
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	n := float64(len(s))
	d := 0.0
	for i, x := range s {
		f := cdf(x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		d = math.Max(d, math.Max(lo, hi))
	}
	return d
}

func TestSamplersMatchTheirCDF(t *testing.T) {
	rng := New(42)
	dists := []interface {
		Sampler
		Dist
	}{
		NewNormal(rng.Fork(), 3, 2),
		NewLogNormal(rng.Fork(), 1, 0.4),
		NewUniform(rng.Fork(), -2, 5),
		NewLogUniform(rng.Fork(), 0.5, 50),
		NewLogistic(rng.Fork(), 4, 1.5),
		NewCauchy(rng.Fork(), 0, 2),
		NewBimodalNormal(rng.Fork(), 0, 1, 6, 1, 0.4),
		NewMultimodalNormal(rng.Fork(), 0.5, 0, 5, 10),
	}
	const n = 4000
	// Critical value for alpha=0.001 is ~1.95/sqrt(n); use a loose bound.
	crit := 2.2 / math.Sqrt(n)
	for _, d := range dists {
		data := SampleN(d, n)
		ks := ksAgainstCDF(data, d.CDF)
		if ks > crit {
			t.Errorf("%s: KS=%.4f exceeds %.4f", d.Name(), ks, crit)
		}
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	rng := New(3)
	dists := []interface {
		Sampler
		Dist
	}{
		NewNormal(rng.Fork(), 3, 2),
		NewLogNormal(rng.Fork(), 1, 0.4),
		NewUniform(rng.Fork(), -2, 5),
		NewLogUniform(rng.Fork(), 0.5, 50),
		NewLogistic(rng.Fork(), 4, 1.5),
		NewCauchy(rng.Fork(), 0, 2),
		NewBimodalNormal(rng.Fork(), 0, 1, 6, 1, 0.4),
	}
	for _, d := range dists {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			got := d.CDF(x)
			if math.Abs(got-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%v))=%v", d.Name(), p, got)
			}
		}
	}
}

func TestNormalQuantileProperty(t *testing.T) {
	// Property: NormalQuantile is the inverse of the standard normal CDF
	// and is antisymmetric around p=0.5.
	f := func(u uint32) bool {
		p := (float64(u) + 1) / (float64(math.MaxUint32) + 2)
		x := NormalQuantile(p)
		if math.Abs(NormalCDF(x, 0, 1)-p) > 1e-8 {
			return false
		}
		return math.Abs(NormalQuantile(1-p)+x) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMixtureCDFMonotoneProperty(t *testing.T) {
	m := NewBimodalNormal(New(9), 0, 1, 8, 2, 0.3)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return m.CDF(a) <= m.CDF(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConstant(t *testing.T) {
	c := NewConstant(4.2)
	for i := 0; i < 10; i++ {
		if c.Next() != 4.2 {
			t.Fatal("constant sampler drifted")
		}
	}
	if c.CDF(4.1) != 0 || c.CDF(4.2) != 1 {
		t.Fatal("constant CDF is not a step at C")
	}
}

func TestSinusoidalAutocorrelation(t *testing.T) {
	s := NewSinusoidal(New(5), 10, 3, 40, 0.1)
	data := SampleN(s, 400)
	// Lag-1 autocorrelation of a slow sine wave must be strongly positive.
	mean := 0.0
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	var num, den float64
	for i := 0; i < len(data)-1; i++ {
		num += (data[i] - mean) * (data[i+1] - mean)
	}
	for _, v := range data {
		den += (v - mean) * (v - mean)
	}
	if r := num / den; r < 0.8 {
		t.Fatalf("lag-1 autocorr = %.3f, want > 0.8", r)
	}
}

func TestAR1Stationary(t *testing.T) {
	d := NewAR1(New(11), 5, 0.9, 1)
	data := SampleN(d, 20000)
	mean := 0.0
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	if math.Abs(mean-5) > 0.5 {
		t.Fatalf("AR1 mean %.3f far from 5", mean)
	}
}

func TestTuningSetComplete(t *testing.T) {
	set := TuningSet(New(1))
	if len(set) != 10 {
		t.Fatalf("tuning set has %d distributions, want 10", len(set))
	}
	want := map[string]bool{"normal": true, "lognormal": true, "uniform": true,
		"loguniform": true, "logistic": true, "bimodal": true, "multimodal": true,
		"sinusoidal": true, "cauchy": true, "constant": true}
	for _, s := range set {
		if !want[s.Name()] {
			t.Errorf("unexpected distribution %q", s.Name())
		}
		delete(want, s.Name())
		// Each must produce finite... Cauchy can be large but finite.
		v := s.Next()
		if math.IsNaN(v) {
			t.Errorf("%s produced NaN", s.Name())
		}
	}
	if len(want) != 0 {
		t.Errorf("missing distributions: %v", want)
	}
}
