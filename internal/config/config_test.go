package config

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func parse(t *testing.T, src string) any {
	t.Helper()
	v, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return v
}

func TestScalars(t *testing.T) {
	v := parse(t, `
name: hotspot
runs: 100
threshold: 0.05
enabled: true
disabled: false
nothing: null
quoted: "a: b # not a comment"
single: 'it''s'
comment: value  # trailing comment
`)
	m := v.(map[string]any)
	want := map[string]any{
		"name": "hotspot", "runs": int64(100), "threshold": 0.05,
		"enabled": true, "disabled": false, "nothing": nil,
		"quoted": "a: b # not a comment", "single": "it's", "comment": "value",
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("got %#v\nwant %#v", m, want)
	}
}

func TestNestedMapping(t *testing.T) {
	v := parse(t, `
launcher:
  backend: local
  timeout: 30
  stopping:
    rule: ks
    threshold: 0.1
`)
	d := NewDocument(v)
	if got := d.String("launcher.backend", ""); got != "local" {
		t.Errorf("backend = %q", got)
	}
	if got := d.Float("launcher.stopping.threshold", 0); got != 0.1 {
		t.Errorf("threshold = %v", got)
	}
	if got := d.Int("launcher.timeout", 0); got != 30 {
		t.Errorf("timeout = %v", got)
	}
}

func TestSequences(t *testing.T) {
	v := parse(t, `
benchmarks:
  - bfs
  - hotspot
  - srad
flow: [1, 2.5, "x", true]
`)
	d := NewDocument(v)
	if got := d.Strings("benchmarks"); !reflect.DeepEqual(got, []string{"bfs", "hotspot", "srad"}) {
		t.Errorf("benchmarks = %v", got)
	}
	flow := d.List("flow")
	want := []any{int64(1), 2.5, "x", true}
	if !reflect.DeepEqual(flow, want) {
		t.Errorf("flow = %#v", flow)
	}
}

func TestSequenceOfMaps(t *testing.T) {
	v := parse(t, `
metrics:
  - name: exec_time
    unit: seconds
    command: "/usr/bin/time -v"
  - name: max_rss
    unit: kb
`)
	d := NewDocument(v)
	if got := d.String("metrics.0.name", ""); got != "exec_time" {
		t.Errorf("metrics.0.name = %q", got)
	}
	if got := d.String("metrics.1.unit", ""); got != "kb" {
		t.Errorf("metrics.1.unit = %q", got)
	}
	if got := d.String("metrics.0.command", ""); got != "/usr/bin/time -v" {
		t.Errorf("command = %q", got)
	}
}

func TestNestedSequenceBlocks(t *testing.T) {
	v := parse(t, `
states:
  - name: run
    actions:
      - functionRef: bench1
      - functionRef: bench2
  - name: done
`)
	d := NewDocument(v)
	if got := d.String("states.0.actions.1.functionRef", ""); got != "bench2" {
		t.Errorf("deep path = %q", got)
	}
	if got := d.String("states.1.name", ""); got != "done" {
		t.Errorf("states.1.name = %q", got)
	}
}

func TestSequenceAtKeyIndent(t *testing.T) {
	// Sequences written at the same indent as the key (common style).
	v := parse(t, `
items:
- a
- b
`)
	d := NewDocument(v)
	if got := d.Strings("items"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("items = %v", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"key without colon",
		"\tkey: tab indent",
		"a: 1\na: 2", // duplicate key
		"k:v",        // missing space
	}
	for _, src := range bad {
		if _, err := ParseYAML([]byte(src)); err == nil {
			t.Errorf("no error for %q", src)
		} else if !errors.Is(err, ErrSyntax) {
			t.Errorf("error %v not wrapped in ErrSyntax", err)
		}
	}
}

func TestEmptyAndComments(t *testing.T) {
	v, err := ParseYAML([]byte("# just a comment\n\n"))
	if err != nil || v != nil {
		t.Fatalf("empty doc: %v, %v", v, err)
	}
}

func TestParseJSON(t *testing.T) {
	d, err := Parse([]byte(`{"a": {"b": [1, 2, 3]}}`), ".json")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Float("a.b.2", 0); got != 3 {
		t.Errorf("a.b.2 = %v", got)
	}
}

func TestParseFileDispatch(t *testing.T) {
	dir := t.TempDir()
	yml := filepath.Join(dir, "c.yaml")
	os.WriteFile(yml, []byte("x: 1\n"), 0o644)
	d, err := ParseFile(yml)
	if err != nil {
		t.Fatal(err)
	}
	if d.Int("x", 0) != 1 {
		t.Error("yaml file not parsed")
	}
	js := filepath.Join(dir, "c.json")
	os.WriteFile(js, []byte(`{"x": 2}`), 0o644)
	d, err = ParseFile(js)
	if err != nil {
		t.Fatal(err)
	}
	if d.Int("x", 0) != 2 {
		t.Error("json file not parsed")
	}
}

func TestUnmarshalStruct(t *testing.T) {
	v := parse(t, `
stopping:
  rule: ks
  threshold: 0.1
  max_samples: 1000
`)
	var cfg struct {
		Rule       string  `json:"rule"`
		Threshold  float64 `json:"threshold"`
		MaxSamples int     `json:"max_samples"`
	}
	if err := NewDocument(v).Unmarshal("stopping", &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Rule != "ks" || cfg.Threshold != 0.1 || cfg.MaxSamples != 1000 {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestDefaults(t *testing.T) {
	d := NewDocument(map[string]any{"a": int64(1)})
	if d.String("missing", "dflt") != "dflt" {
		t.Error("string default")
	}
	if d.Int("a", 0) != 1 {
		t.Error("int64 coercion")
	}
	if d.Bool("a", true) != true {
		t.Error("mistyped bool should return default")
	}
	if d.Map("a") != nil || d.List("a") != nil {
		t.Error("mistyped container should return nil")
	}
}
