package config

import (
	"testing"
)

// FuzzParseYAML checks that the YAML-subset parser never panics and that
// every successfully parsed document is a well-formed value tree (only
// map[string]any, []any, string, int64, float64, bool, nil).
func FuzzParseYAML(f *testing.F) {
	seeds := []string{
		"",
		"a: 1\n",
		"a:\n  b: 2\n  c: [1, 2.5, x]\n",
		"list:\n  - 1\n  - name: x\n    v: true\n",
		"- a\n- b\n",
		"k: \"quoted: value\"\nweird: 'it''s'\n",
		"deep:\n  a:\n    b:\n      c: null\n",
		"# comment only\n",
		"a: [ [1, 2], {} ]\n",
		"x: 1\ny:\n- p: 1\n- q: 2\n",
		"broken\n",
		"a: 1\n\tb: 2\n",
		"::\n",
		"a: [unclosed\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ParseYAML(data)
		if err != nil {
			return
		}
		checkTree(t, v, 0)
	})
}

// checkTree validates the value-tree invariant.
func checkTree(t *testing.T, v any, depth int) {
	if depth > 200 {
		t.Fatal("tree too deep")
	}
	switch node := v.(type) {
	case nil, string, int64, float64, bool:
	case map[string]any:
		for _, child := range node {
			checkTree(t, child, depth+1)
		}
	case []any:
		for _, child := range node {
			checkTree(t, child, depth+1)
		}
	default:
		t.Fatalf("unexpected node type %T", v)
	}
}

// FuzzParseScalar checks scalar parsing never panics and is total.
func FuzzParseScalar(f *testing.F) {
	for _, s := range []string{"", "1", "1.5", "true", "null", `"x"`, "'y'", "[1,2]", "[", "{}", "a # c"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v := parseScalar(s)
		checkTree(t, v, 0)
	})
}
