package config

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Document wraps a parsed configuration tree with typed, path-based access.
// Paths use dots for map keys ("launcher.backend") and numeric segments for
// list indices ("metrics.0.name").
type Document struct {
	root any
}

// NewDocument wraps an already parsed tree.
func NewDocument(root any) *Document { return &Document{root: root} }

// ParseFile loads a configuration file, selecting the parser by extension:
// .json uses encoding/json, anything else the YAML subset.
func ParseFile(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data, filepath.Ext(path))
}

// Parse decodes data using the parser implied by ext (".json" or a YAML
// extension; unknown extensions try JSON first, then YAML).
func Parse(data []byte, ext string) (*Document, error) {
	switch strings.ToLower(ext) {
	case ".json":
		var root any
		if err := json.Unmarshal(data, &root); err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
		return &Document{root: root}, nil
	case ".yaml", ".yml":
		root, err := ParseYAML(data)
		if err != nil {
			return nil, err
		}
		return &Document{root: root}, nil
	default:
		var root any
		if err := json.Unmarshal(data, &root); err == nil {
			return &Document{root: root}, nil
		}
		root, yerr := ParseYAML(data)
		if yerr != nil {
			return nil, yerr
		}
		return &Document{root: root}, nil
	}
}

// Root returns the underlying tree.
func (d *Document) Root() any { return d.root }

// Lookup resolves a dotted path; ok is false if any segment is missing.
func (d *Document) Lookup(path string) (any, bool) {
	cur := d.root
	if path == "" {
		return cur, true
	}
	for _, seg := range strings.Split(path, ".") {
		switch node := cur.(type) {
		case map[string]any:
			v, found := node[seg]
			if !found {
				return nil, false
			}
			cur = v
		case []any:
			var idx int
			if _, err := fmt.Sscanf(seg, "%d", &idx); err != nil || idx < 0 || idx >= len(node) {
				return nil, false
			}
			cur = node[idx]
		default:
			return nil, false
		}
	}
	return cur, true
}

// String returns the string at path, or def when missing or mistyped.
func (d *Document) String(path, def string) string {
	if v, ok := d.Lookup(path); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

// Int returns the integer at path, accepting int64 and whole float64.
func (d *Document) Int(path string, def int) int {
	if v, ok := d.Lookup(path); ok {
		switch n := v.(type) {
		case int64:
			return int(n)
		case float64:
			if n == float64(int64(n)) {
				return int(n)
			}
		case int:
			return n
		}
	}
	return def
}

// Float returns the float at path.
func (d *Document) Float(path string, def float64) float64 {
	if v, ok := d.Lookup(path); ok {
		switch n := v.(type) {
		case float64:
			return n
		case int64:
			return float64(n)
		case int:
			return float64(n)
		}
	}
	return def
}

// Bool returns the bool at path.
func (d *Document) Bool(path string, def bool) bool {
	if v, ok := d.Lookup(path); ok {
		if b, ok := v.(bool); ok {
			return b
		}
	}
	return def
}

// List returns the list at path, or nil.
func (d *Document) List(path string) []any {
	if v, ok := d.Lookup(path); ok {
		if l, ok := v.([]any); ok {
			return l
		}
	}
	return nil
}

// Map returns the mapping at path, or nil.
func (d *Document) Map(path string) map[string]any {
	if v, ok := d.Lookup(path); ok {
		if m, ok := v.(map[string]any); ok {
			return m
		}
	}
	return nil
}

// Strings returns the list at path coerced to strings (non-strings are
// formatted with %v).
func (d *Document) Strings(path string) []string {
	l := d.List(path)
	out := make([]string, len(l))
	for i, v := range l {
		if s, ok := v.(string); ok {
			out[i] = s
		} else {
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	return out
}

// Unmarshal decodes the subtree at path into out (a struct pointer) by
// round-tripping through encoding/json, so `json` struct tags apply.
func (d *Document) Unmarshal(path string, out any) error {
	v, ok := d.Lookup(path)
	if !ok {
		return fmt.Errorf("config: path %q not found", path)
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("config: decoding %q: %w", path, err)
	}
	return nil
}
