// Package config loads SHARP configuration documents. The paper's launcher
// accepts JSON or YAML files describing backends, metrics, and workflows
// (§IV-a, §IV-d); the Go standard library has no YAML support, so this
// package includes a parser for the YAML subset those configuration files
// actually use: block mappings, block sequences, scalars (null, bool, int,
// float, quoted and plain strings), nesting by indentation, comments, and
// simple flow sequences ([a, b, c]).
//
// Parsed documents are plain Go values (map[string]any, []any, string,
// float64, int64, bool, nil) wrapped in a Document with typed, path-based
// accessors, and can be decoded into structs via Unmarshal.
package config

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrSyntax wraps YAML-subset syntax errors.
var ErrSyntax = errors.New("config: syntax error")

type yamlParser struct {
	lines []yamlLine
	pos   int
}

type yamlLine struct {
	indent int
	text   string // content with indentation stripped
	num    int    // 1-based source line
}

// ParseYAML parses a document in the YAML subset described in the package
// comment and returns the root value.
func ParseYAML(data []byte) (any, error) {
	p := &yamlParser{}
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("%w: line %d: tabs are not allowed for indentation", ErrSyntax, i+1)
		}
		if trimmed == "---" {
			continue // document separator: single-document subset
		}
		p.lines = append(p.lines, yamlLine{indent: len(line) - len(trimmed), text: trimmed, num: i + 1})
	}
	if len(p.lines) == 0 {
		return nil, nil
	}
	v, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("%w: line %d: unexpected content %q", ErrSyntax, p.lines[p.pos].num, p.lines[p.pos].text)
	}
	return v, nil
}

// parseBlock parses a mapping or sequence whose entries sit at exactly
// the given indent.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, nil
	}
	if strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("%w: line %d: unexpected indentation", ErrSyntax, ln.num)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			break // sequence at same level: belongs to an outer construct
		}
		key, rest, err := splitKey(ln.text, ln.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("%w: line %d: duplicate key %q", ErrSyntax, ln.num, key)
		}
		p.pos++
		if rest != "" {
			m[key] = parseScalar(rest)
			continue
		}
		// Value is a nested block (or null if nothing deeper follows).
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else if p.pos < len(p.lines) && p.lines[p.pos].indent == indent &&
			(strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-") {
			// Sequences are commonly written at the same indent as the key.
			v, err := p.parseSequence(indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || (!strings.HasPrefix(ln.text, "- ") && ln.text != "-") {
			break
		}
		item := strings.TrimPrefix(ln.text, "-")
		item = strings.TrimPrefix(item, " ")
		p.pos++
		switch {
		case item == "":
			// Nested block item.
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				seq = append(seq, v)
			} else {
				seq = append(seq, nil)
			}
		case strings.Contains(item, ": ") || strings.HasSuffix(item, ":"):
			// Inline first key of a map item: "- name: x" with the rest of
			// the map indented beneath.
			key, rest, err := splitKey(item, ln.num)
			if err != nil {
				return nil, err
			}
			itemMap := map[string]any{}
			if rest != "" {
				itemMap[key] = parseScalar(rest)
			} else if p.pos < len(p.lines) && p.lines[p.pos].indent > indent+2 {
				v, err := p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				itemMap[key] = v
			} else {
				itemMap[key] = nil
			}
			// Continuation keys are indented by the "- " width (indent+2).
			if p.pos < len(p.lines) && p.pos < len(p.lines) && p.lines[p.pos].indent == indent+2 &&
				!strings.HasPrefix(p.lines[p.pos].text, "- ") {
				rest, err := p.parseMapping(indent + 2)
				if err != nil {
					return nil, err
				}
				for k, v := range rest.(map[string]any) {
					if _, dup := itemMap[k]; dup {
						return nil, fmt.Errorf("%w: line %d: duplicate key %q", ErrSyntax, ln.num, k)
					}
					itemMap[k] = v
				}
			}
			seq = append(seq, itemMap)
		default:
			seq = append(seq, parseScalar(item))
		}
	}
	return seq, nil
}

// splitKey splits "key: value" handling quoted keys; rest is "" when the
// value is a nested block.
func splitKey(text string, num int) (key, rest string, err error) {
	if strings.HasPrefix(text, `"`) {
		end := strings.Index(text[1:], `"`)
		if end < 0 {
			return "", "", fmt.Errorf("%w: line %d: unterminated quoted key", ErrSyntax, num)
		}
		key = text[1 : 1+end]
		after := strings.TrimLeft(text[2+end:], " ")
		if !strings.HasPrefix(after, ":") {
			return "", "", fmt.Errorf("%w: line %d: expected ':' after key", ErrSyntax, num)
		}
		return key, strings.TrimLeft(after[1:], " "), nil
	}
	idx := strings.Index(text, ":")
	if idx < 0 {
		return "", "", fmt.Errorf("%w: line %d: expected 'key: value', got %q", ErrSyntax, num, text)
	}
	after := text[idx+1:]
	if after != "" && !strings.HasPrefix(after, " ") {
		return "", "", fmt.Errorf("%w: line %d: missing space after ':' in %q", ErrSyntax, num, text)
	}
	return strings.TrimSpace(text[:idx]), strings.TrimSpace(after), nil
}

// parseScalar interprets a scalar token: null, bool, int, float, quoted
// string, flow sequence, or plain string. Trailing comments are stripped
// from unquoted scalars.
func parseScalar(s string) any {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2 {
		if unq, err := strconv.Unquote(s); err == nil {
			return unq
		}
		return s[1 : len(s)-1]
	}
	if strings.HasPrefix(s, `'`) && strings.HasSuffix(s, `'`) && len(s) >= 2 {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'")
	}
	// Strip trailing comment on unquoted scalars.
	if i := strings.Index(s, " #"); i >= 0 {
		s = strings.TrimSpace(s[:i])
	}
	// Flow sequence [a, b, c].
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}
		}
		parts := splitFlow(inner)
		out := make([]any, len(parts))
		for i, part := range parts {
			out[i] = parseScalar(strings.TrimSpace(part))
		}
		return out
	}
	// Flow mapping {} (empty only; nested flow maps are out of subset).
	if s == "{}" {
		return map[string]any{}
	}
	switch s {
	case "null", "~", "":
		return nil
	case "true", "True":
		return true
	case "false", "False":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// splitFlow splits a flow-sequence body on top-level commas, respecting
// quotes and nested brackets.
func splitFlow(s string) []string {
	var parts []string
	depth := 0
	inQuote := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}
