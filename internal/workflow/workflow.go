// Package workflow executes multi-stage experiment workflows (§IV-b).
//
// Modern evaluations combine applications or stages with dependency
// relationships. SHARP adopts the CNCF Serverless Workflow Specification as
// the input format (a practical subset: operation and parallel states with
// functionRef actions and transitions) and offers two execution paths,
// mirroring the paper:
//
//   - a translator that emits a Makefile whose targets invoke the SHARP
//     launcher, so workflows run under the time-tested 'make' tool, and
//   - a native topological executor used by tests and offline runs.
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sharp/internal/config"
	"sharp/internal/resilience"
)

// Action is one function invocation within a workflow state.
type Action struct {
	// Function is the workload/function name to invoke.
	Function string
	// Args are invocation arguments (stringified from the spec).
	Args []string
}

// Task is one workflow state and its dependencies.
type Task struct {
	// Name is the state name (unique within the workflow).
	Name string
	// Actions run when the task executes. Actions of a "parallel" state
	// run concurrently; those of an "operation" state run in order.
	Actions []Action
	// Parallel marks states whose actions run concurrently.
	Parallel bool
	// DependsOn lists states that must complete first.
	DependsOn []string
	// Retries is the number of per-action retries (total attempts =
	// Retries + 1); parsed from the state's "retries" key.
	Retries int
	// ContinueOnError lets the workflow proceed past this task's failure
	// (the error is dropped after all its actions have been attempted);
	// parsed from the state's "continueOnError" key.
	ContinueOnError bool
}

// Workflow is a parsed dependency graph of tasks.
type Workflow struct {
	// Name is the workflow identifier.
	Name string
	// Tasks is the state list in declaration order.
	Tasks []Task
}

// ErrCycle is returned when the dependency graph has a cycle.
var ErrCycle = errors.New("workflow: dependency cycle")

// Parse interprets a Serverless Workflow document (already loaded via
// package config). Recognized structure:
//
//	id / name:  workflow identifier
//	start:      first state (optional; defaults to the first in the list)
//	states:     - name, type (operation|parallel), actions, transition, end
//
// Actions reference functions by functionRef (a string or an object with
// refName and arguments). Transitions define the dependency chain: a state
// depends on every state that transitions to it. A "dependsOn" list on a
// state adds explicit extra dependencies.
func Parse(doc *config.Document) (*Workflow, error) {
	w := &Workflow{Name: doc.String("id", doc.String("name", "workflow"))}
	states := doc.List("states")
	if len(states) == 0 {
		return nil, errors.New("workflow: no states")
	}
	index := map[string]int{}
	for i := range states {
		st := config.NewDocument(states[i])
		name := st.String("name", "")
		if name == "" {
			return nil, fmt.Errorf("workflow: state %d has no name", i)
		}
		if _, dup := index[name]; dup {
			return nil, fmt.Errorf("workflow: duplicate state %q", name)
		}
		task := Task{
			Name:            name,
			Parallel:        st.String("type", "operation") == "parallel",
			Retries:         st.Int("retries", 0),
			ContinueOnError: st.Bool("continueOnError", false),
		}
		if task.Retries < 0 {
			return nil, fmt.Errorf("workflow: state %q: negative retries", name)
		}
		for j := range st.List("actions") {
			act, err := parseAction(st, fmt.Sprintf("actions.%d", j))
			if err != nil {
				return nil, fmt.Errorf("workflow: state %q: %w", name, err)
			}
			task.Actions = append(task.Actions, act)
		}
		// Parallel states may declare branches, each with actions.
		for bi := range st.List("branches") {
			br := config.NewDocument(st.Map(fmt.Sprintf("branches.%d", bi)))
			for j := range br.List("actions") {
				act, err := parseAction(br, fmt.Sprintf("actions.%d", j))
				if err != nil {
					return nil, fmt.Errorf("workflow: state %q branch %d: %w", name, bi, err)
				}
				task.Actions = append(task.Actions, act)
			}
			task.Parallel = true
		}
		task.DependsOn = append(task.DependsOn, st.Strings("dependsOn")...)
		index[name] = len(w.Tasks)
		w.Tasks = append(w.Tasks, task)
	}
	// Transitions: state S -> T means T depends on S.
	for i := range states {
		st := config.NewDocument(states[i])
		from := st.String("name", "")
		to := st.String("transition", st.String("transition.nextState", ""))
		if to == "" {
			continue
		}
		ti, ok := index[to]
		if !ok {
			return nil, fmt.Errorf("workflow: state %q transitions to unknown state %q", from, to)
		}
		w.Tasks[ti].DependsOn = append(w.Tasks[ti].DependsOn, from)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// parseAction reads one action node at the given path.
func parseAction(doc *config.Document, path string) (Action, error) {
	// functionRef as plain string.
	if s := doc.String(path+".functionRef", ""); s != "" {
		return Action{Function: s}, nil
	}
	// functionRef as object.
	ref := doc.String(path+".functionRef.refName", "")
	if ref == "" {
		return Action{}, fmt.Errorf("action %s has no functionRef", path)
	}
	act := Action{Function: ref}
	if args := doc.Map(path + ".functionRef.arguments"); args != nil {
		keys := make([]string, 0, len(args))
		for k := range args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			act.Args = append(act.Args, fmt.Sprintf("%s=%v", k, args[k]))
		}
	}
	return act, nil
}

// ParseFile loads and parses a workflow file (JSON or YAML subset).
func ParseFile(path string) (*Workflow, error) {
	doc, err := config.ParseFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(doc)
}

// Validate checks that dependencies exist and the graph is acyclic.
func (w *Workflow) Validate() error {
	index := map[string]int{}
	for i, t := range w.Tasks {
		index[t.Name] = i
	}
	for _, t := range w.Tasks {
		for _, d := range t.DependsOn {
			if _, ok := index[d]; !ok {
				return fmt.Errorf("workflow: task %q depends on unknown task %q", t.Name, d)
			}
		}
	}
	if _, err := w.Levels(); err != nil {
		return err
	}
	return nil
}

// Levels returns the tasks grouped into dependency levels: every task in
// level k depends only on tasks in levels < k. Tasks within a level can run
// concurrently. It returns ErrCycle for cyclic graphs.
func (w *Workflow) Levels() ([][]string, error) {
	indeg := map[string]int{}
	dependents := map[string][]string{}
	for _, t := range w.Tasks {
		indeg[t.Name] = len(dedup(t.DependsOn))
		for _, d := range dedup(t.DependsOn) {
			dependents[d] = append(dependents[d], t.Name)
		}
	}
	var levels [][]string
	remaining := len(w.Tasks)
	// Ready set in declaration order for deterministic output.
	for remaining > 0 {
		var level []string
		for _, t := range w.Tasks {
			if indeg[t.Name] == 0 {
				level = append(level, t.Name)
			}
		}
		if len(level) == 0 {
			return nil, ErrCycle
		}
		for _, name := range level {
			indeg[name] = -1 // consumed
			remaining--
			for _, dep := range dependents[name] {
				indeg[dep]--
			}
		}
		levels = append(levels, level)
	}
	return levels, nil
}

// Task returns the task with the given name.
func (w *Workflow) Task(name string) (Task, bool) {
	for _, t := range w.Tasks {
		if t.Name == name {
			return t, true
		}
	}
	return Task{}, false
}

func dedup(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Runner executes a single action; implementations typically call the SHARP
// launcher.
type Runner func(ctx context.Context, task string, action Action) error

// Execute runs the workflow with the given runner, respecting dependencies:
// levels run sequentially, tasks within a level concurrently, and a
// parallel task's actions concurrently. A failed level aborts the remaining
// levels, reporting every failed task of the level via errors.Join — a
// multi-task failure is fully reported, not truncated to its first error.
// Per-task resilience: Retries re-run failing actions, and ContinueOnError
// keeps the workflow going past a task's failure.
func (w *Workflow) Execute(ctx context.Context, run Runner) error {
	levels, err := w.Levels()
	if err != nil {
		return err
	}
	for _, level := range levels {
		var wg sync.WaitGroup
		errs := make([]error, len(level))
		for i, name := range level {
			task, _ := w.Task(name)
			wg.Add(1)
			go func(i int, task Task) {
				defer wg.Done()
				errs[i] = w.runTask(ctx, task, run)
			}(i, task)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return err
		}
	}
	return nil
}

// runAction executes one action under the task's retry policy.
func (w *Workflow) runAction(ctx context.Context, task Task, act Action, run Runner) error {
	attempts, err := resilience.Do(ctx, resilience.Policy{
		MaxAttempts: task.Retries + 1,
		BaseDelay:   time.Millisecond,
	}, func(ctx context.Context, _ int) error {
		return run(ctx, task.Name, act)
	})
	if err != nil {
		return fmt.Errorf("workflow: task %q action %q failed after %d attempt(s): %w",
			task.Name, act.Function, attempts, err)
	}
	return nil
}

func (w *Workflow) runTask(ctx context.Context, task Task, run Runner) error {
	err := func() error {
		if task.Parallel {
			var wg sync.WaitGroup
			errs := make([]error, len(task.Actions))
			for i, act := range task.Actions {
				wg.Add(1)
				go func(i int, act Action) {
					defer wg.Done()
					errs[i] = w.runAction(ctx, task, act, run)
				}(i, act)
			}
			wg.Wait()
			return errors.Join(errs...)
		}
		for _, act := range task.Actions {
			if err := w.runAction(ctx, task, act, run); err != nil {
				return err
			}
		}
		return nil
	}()
	if err != nil && task.ContinueOnError {
		return nil
	}
	return err
}

// Makefile renders the workflow as a Makefile whose targets invoke the
// given launcher command — the paper's translation path (§IV-b). Each state
// becomes a phony target depending on its predecessors; 'make -j' then
// provides parallel execution of independent states.
func (w *Workflow) Makefile(launcher string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Makefile generated by SHARP from workflow %q.\n", w.Name)
	fmt.Fprintf(&b, "# Run with: make -j all\n\n")
	var phony []string
	phony = append(phony, "all")
	// Terminal tasks: those no one depends on.
	depended := map[string]bool{}
	for _, t := range w.Tasks {
		for _, d := range t.DependsOn {
			depended[d] = true
		}
	}
	var terminals []string
	for _, t := range w.Tasks {
		if !depended[t.Name] {
			terminals = append(terminals, t.Name)
		}
	}
	fmt.Fprintf(&b, "all: %s\n\n", strings.Join(terminals, " "))
	for _, t := range w.Tasks {
		phony = append(phony, t.Name)
		fmt.Fprintf(&b, "%s: %s\n", t.Name, strings.Join(dedup(t.DependsOn), " "))
		for _, act := range t.Actions {
			args := ""
			if len(act.Args) > 0 {
				args = " --args '" + strings.Join(act.Args, ",") + "'"
			}
			cmd := fmt.Sprintf("%s run --workload %s%s", launcher, act.Function, args)
			if t.Retries > 0 {
				// Retry the action inside the recipe: attempt up to N times,
				// failing the target only when every attempt failed.
				n := t.Retries + 1
				cmd = fmt.Sprintf("for i in $$(seq 1 %d); do %s && break; [ $$i -lt %d ] || exit 1; done",
					n, cmd, n)
			}
			prefix := ""
			if t.ContinueOnError {
				prefix = "-" // make ignores this recipe line's failure
			}
			fmt.Fprintf(&b, "\t%s%s\n", prefix, cmd)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, ".PHONY: %s\n", strings.Join(phony, " "))
	return b.String()
}
