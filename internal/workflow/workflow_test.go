package workflow

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"sharp/internal/config"
)

const sampleYAML = `
id: rodinia-pipeline
start: prepare
states:
  - name: prepare
    type: operation
    actions:
      - functionRef: setup
    transition: measure
  - name: measure
    type: parallel
    branches:
      - actions:
          - functionRef:
              refName: bfs
              arguments:
                graph: graph1MW_6.txt
      - actions:
          - functionRef:
              refName: hotspot
    transition: report
  - name: report
    type: operation
    actions:
      - functionRef: reporter
`

func parseSample(t *testing.T) *Workflow {
	t.Helper()
	doc, err := config.Parse([]byte(sampleYAML), ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestParseSample(t *testing.T) {
	w := parseSample(t)
	if w.Name != "rodinia-pipeline" {
		t.Errorf("name = %q", w.Name)
	}
	if len(w.Tasks) != 3 {
		t.Fatalf("tasks = %d", len(w.Tasks))
	}
	measure, ok := w.Task("measure")
	if !ok || !measure.Parallel {
		t.Fatalf("measure task: %+v", measure)
	}
	if len(measure.Actions) != 2 {
		t.Fatalf("measure actions = %v", measure.Actions)
	}
	if measure.Actions[0].Function != "bfs" || len(measure.Actions[0].Args) != 1 ||
		measure.Actions[0].Args[0] != "graph=graph1MW_6.txt" {
		t.Errorf("bfs action = %+v", measure.Actions[0])
	}
	if deps := measure.DependsOn; len(deps) != 1 || deps[0] != "prepare" {
		t.Errorf("measure deps = %v", deps)
	}
}

func TestLevels(t *testing.T) {
	w := parseSample(t)
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"prepare"}, {"measure"}, {"report"}}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v", levels)
	}
	for i := range want {
		if strings.Join(levels[i], ",") != strings.Join(want[i], ",") {
			t.Fatalf("level %d = %v, want %v", i, levels[i], want[i])
		}
	}
}

func TestCycleDetection(t *testing.T) {
	w := &Workflow{Tasks: []Task{
		{Name: "a", DependsOn: []string{"b"}},
		{Name: "b", DependsOn: []string{"a"}},
	}}
	if _, err := w.Levels(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestValidateUnknownDep(t *testing.T) {
	w := &Workflow{Tasks: []Task{{Name: "a", DependsOn: []string{"ghost"}}}}
	if err := w.Validate(); err == nil {
		t.Fatal("unknown dependency accepted")
	}
}

func TestExecuteOrderAndParallelism(t *testing.T) {
	w := parseSample(t)
	var mu sync.Mutex
	var order []string
	err := w.Execute(context.Background(), func(ctx context.Context, task string, act Action) error {
		mu.Lock()
		order = append(order, task+"/"+act.Function)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("actions run = %v", order)
	}
	if order[0] != "prepare/setup" {
		t.Errorf("first action = %q", order[0])
	}
	if order[3] != "report/reporter" {
		t.Errorf("last action = %q", order[3])
	}
}

func TestExecutePropagatesErrors(t *testing.T) {
	w := parseSample(t)
	boom := errors.New("boom")
	ran := map[string]bool{}
	var mu sync.Mutex
	err := w.Execute(context.Background(), func(ctx context.Context, task string, act Action) error {
		mu.Lock()
		ran[task] = true
		mu.Unlock()
		if act.Function == "bfs" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran["report"] {
		t.Error("report ran after failed dependency")
	}
}

func TestMakefileOutput(t *testing.T) {
	w := parseSample(t)
	mk := w.Makefile("sharp")
	for _, want := range []string{
		"all: report",
		"measure: prepare",
		"report: measure",
		"\tsharp run --workload bfs --args 'graph=graph1MW_6.txt'",
		"\tsharp run --workload reporter",
		".PHONY: all prepare measure report",
	} {
		if !strings.Contains(mk, want) {
			t.Errorf("Makefile missing %q:\n%s", want, mk)
		}
	}
}

func TestParseJSONWorkflow(t *testing.T) {
	js := `{
	  "id": "wf",
	  "states": [
	    {"name": "a", "type": "operation",
	     "actions": [{"functionRef": {"refName": "f1"}}], "transition": "b"},
	    {"name": "b", "type": "operation",
	     "actions": [{"functionRef": "f2"}]}
	  ]
	}`
	doc, err := config.Parse([]byte(js), ".json")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := w.Task("b")
	if len(b.DependsOn) != 1 || b.DependsOn[0] != "a" {
		t.Fatalf("b deps = %v", b.DependsOn)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`{"id": "x", "states": []}`,
		`{"id": "x", "states": [{"type": "operation"}]}`,
		`{"id": "x", "states": [{"name": "a"}, {"name": "a"}]}`,
		`{"id": "x", "states": [{"name": "a", "transition": "ghost"}]}`,
		`{"id": "x", "states": [{"name": "a", "actions": [{}]}]}`,
	}
	for _, src := range cases {
		doc, err := config.Parse([]byte(src), ".json")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(doc); err == nil {
			t.Errorf("no error for %s", src)
		}
	}
}
