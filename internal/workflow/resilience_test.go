package workflow

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"sharp/internal/config"
)

func parseYAML(t *testing.T, src string) *Workflow {
	t.Helper()
	doc, err := config.Parse([]byte(src), ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestExecuteJoinsLevelErrors(t *testing.T) {
	// Satellite (c): two independent tasks in the same level both fail; the
	// returned error must report both, not just the first.
	w := parseYAML(t, `
id: joined
states:
  - name: a
    actions:
      - functionRef: fa
  - name: b
    actions:
      - functionRef: fb
`)
	err := w.Execute(context.Background(), func(ctx context.Context, task string, act Action) error {
		return errors.New(task + " exploded")
	})
	if err == nil {
		t.Fatal("no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "a exploded") || !strings.Contains(msg, "b exploded") {
		t.Fatalf("level error truncated: %v", msg)
	}
}

func TestTaskRetriesHealTransientFailures(t *testing.T) {
	w := parseYAML(t, `
id: retried
states:
  - name: flaky
    retries: 2
    actions:
      - functionRef: f
`)
	var mu sync.Mutex
	calls := 0
	err := w.Execute(context.Background(), func(ctx context.Context, task string, act Action) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retries did not heal: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestTaskRetriesExhausted(t *testing.T) {
	w := parseYAML(t, `
id: doomed
states:
  - name: broken
    retries: 1
    actions:
      - functionRef: f
`)
	calls := 0
	err := w.Execute(context.Background(), func(ctx context.Context, task string, act Action) error {
		calls++
		return errors.New("always")
	})
	if err == nil || calls != 2 {
		t.Fatalf("err = %v calls = %d", err, calls)
	}
	if !strings.Contains(err.Error(), "after 2 attempt(s)") {
		t.Fatalf("attempt count missing: %v", err)
	}
}

func TestContinueOnError(t *testing.T) {
	w := parseYAML(t, `
id: tolerant
states:
  - name: besteffort
    continueOnError: true
    actions:
      - functionRef: f
    transition: downstream
  - name: downstream
    actions:
      - functionRef: g
`)
	var mu sync.Mutex
	var ran []string
	err := w.Execute(context.Background(), func(ctx context.Context, task string, act Action) error {
		mu.Lock()
		ran = append(ran, task)
		mu.Unlock()
		if task == "besteffort" {
			return errors.New("tolerated")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("continueOnError leaked: %v", err)
	}
	if len(ran) != 2 || ran[1] != "downstream" {
		t.Fatalf("ran = %v; downstream skipped", ran)
	}
}

func TestNegativeRetriesRejected(t *testing.T) {
	doc, err := config.Parse([]byte(`
id: bad
states:
  - name: s
    retries: -1
    actions:
      - functionRef: f
`), ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(doc); err == nil {
		t.Fatal("negative retries accepted")
	}
}

func TestMakefileRetryAndContinue(t *testing.T) {
	w := parseYAML(t, `
id: resilient-make
states:
  - name: retried
    retries: 2
    actions:
      - functionRef: f
    transition: tolerated
  - name: tolerated
    continueOnError: true
    actions:
      - functionRef: g
`)
	mk := w.Makefile("sharp")
	if !strings.Contains(mk, "seq 1 3") {
		t.Errorf("retry loop missing from Makefile:\n%s", mk)
	}
	if !strings.Contains(mk, "\t-sharp run --workload g") {
		t.Errorf("continueOnError '-' prefix missing:\n%s", mk)
	}
	// Normal recipes must not be prefixed.
	if strings.Contains(mk, "\t-for") {
		t.Errorf("retry recipe wrongly ignored failures:\n%s", mk)
	}
}
