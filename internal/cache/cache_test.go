package cache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sharp/internal/obs"
	"sharp/internal/record"
)

func testRows(n, run int) []record.Row {
	rows := make([]record.Row, n)
	ts := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	for i := range rows {
		rows[i] = record.Row{
			Timestamp: ts.Add(time.Duration(i) * time.Second),
			Experiment: "exp", Workload: "hotspot", Backend: "sim",
			Machine: "m1", Day: 1, Run: run + i, Instance: 1, Attempt: 1,
			Metric: "exec_time", Value: float64(i) + 0.5, Unit: "seconds",
			Status: record.StatusOK,
		}
	}
	return rows
}

func TestKeyIsLengthPrefixed(t *testing.T) {
	if Key("k", "ab", "c") == Key("k", "a", "bc") {
		t.Fatal("concatenation collision")
	}
	if Key("k", "a") == Key("k2", "a") {
		t.Fatal("kind not mixed into the key")
	}
	if Key("k", "a") != Key("k", "a") {
		t.Fatal("key not deterministic")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Clock = func() time.Time { return time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC) }
	key := Key("test/v1", "cell-a")
	rows := testRows(10, 1)

	if got, m, err := s.Get(key, "exp"); err != nil || got != nil || m != nil {
		t.Fatalf("Get on empty cache = (%v, %v, %v)", got, m, err)
	}
	if err := s.Put(key, "test/v1", "exp", rows); err != nil {
		t.Fatal(err)
	}
	got, m, err := s.Get(key, "exp")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, got) {
		t.Fatal("cached rows differ")
	}
	if m.Kind != "test/v1" || m.Experiment != "exp" || m.Rows != 10 {
		t.Fatalf("meta = %+v", m)
	}
	// A different key misses.
	if got, _, _ := s.Get(Key("test/v1", "cell-b"), "exp"); got != nil {
		t.Fatal("wrong key hit")
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 2 || c.Stores != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestCountersSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put(Key("k", "a"), "k", "exp", testRows(3, 1))
	s.Get(Key("k", "a"), "exp")
	s.Get(Key("k", "zzz"), "exp")

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := s2.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Stores != 1 {
		t.Fatalf("reopened counters = %+v", c)
	}
}

func TestOrphanSelfHeals(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := Key("k", "a")
	s.Put(key, "k", "exp", testRows(5, 1))
	// Damage: rows file vanishes (torn prune / disk repair) but the commit
	// point survives.
	if err := os.Remove(s.rowsPath(key)); err != nil {
		t.Fatal(err)
	}
	got, m, err := s.Get(key, "exp")
	if err != nil || got != nil || m != nil {
		t.Fatalf("damaged entry should miss, got (%v, %v, %v)", got, m, err)
	}
	if _, err := os.Stat(s.metaPath(key)); !os.IsNotExist(err) {
		t.Fatal("self-heal left the commit point behind")
	}
	// The entry can be rebuilt.
	if err := s.Put(key, "k", "exp", testRows(5, 1)); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := s.Get(key, "exp"); len(got) != 5 {
		t.Fatal("rebuilt entry does not hit")
	}
}

func TestPruneDeletesCommitPointFirst(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	now := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	s.Clock = func() time.Time { return now }
	old, fresh := Key("k", "old"), Key("k", "fresh")
	s.Put(old, "k", "exp", testRows(4, 1))
	now = now.Add(48 * time.Hour)
	s.Put(fresh, "k", "exp", testRows(4, 1))

	removed, err := s.Prune(now.Add(-24 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if _, err := os.Stat(s.metaPath(old)); !os.IsNotExist(err) {
		t.Fatal("old commit point survived prune")
	}
	if _, err := os.Stat(s.rowsPath(old)); !os.IsNotExist(err) {
		t.Fatal("old rows survived prune")
	}
	if got, _, _ := s.Get(fresh, "exp"); len(got) != 4 {
		t.Fatal("fresh entry lost")
	}

	// A crash between the two deletes leaves an orphaned rows file: Get
	// misses it and the next Prune sweeps it.
	orphan := Key("k", "orphan")
	s.Put(orphan, "k", "exp", testRows(2, 1))
	if err := os.Remove(s.metaPath(orphan)); err != nil { // crash after commit-point delete
		t.Fatal(err)
	}
	if got, _, _ := s.Get(orphan, "exp"); got != nil {
		t.Fatal("orphan visible to Get")
	}
	if _, err := s.Prune(now.Add(-365 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.rowsPath(orphan)); !os.IsNotExist(err) {
		t.Fatal("orphaned rows not swept")
	}
}

// tracerFunc adapts a function to obs.Tracer for event capture.
type tracerFunc func(string, map[string]any)

func (f tracerFunc) Emit(typ string, fields map[string]any) { f(typ, fields) }

func TestStatsAndObservability(t *testing.T) {
	s, _ := Open(t.TempDir())
	created := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	s.Clock = func() time.Time { return created }
	reg := obs.NewRegistry()
	var events []string
	s.Registry = reg
	s.Tracer = tracerFunc(func(typ string, fields map[string]any) {
		events = append(events, typ)
	})

	key := Key("k", "a")
	s.Put(key, "k", "exp", testRows(6, 1))
	s.Get(key, "exp")
	s.Get(Key("k", "nope"), "exp")

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Bytes <= 0 || !st.Oldest.Equal(created) {
		t.Fatalf("stats = %+v", st)
	}
	if st.Counters.Hits != 1 || st.Counters.Misses != 1 || st.Counters.Stores != 1 {
		t.Fatalf("stats counters = %+v", st.Counters)
	}
	want := []string{obs.EventCacheStore, obs.EventCacheHit, obs.EventCacheMiss}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for result, n := range map[string]float64{"hit": 1, "miss": 1, "store": 1} {
		if v := reg.Counter("sharp_cache_requests_total", "", "result", result).Value(); v != n {
			t.Fatalf("sharp_cache_requests_total{result=%q} = %g, want %g", result, v, n)
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
	// Open creates nested directories.
	dir := filepath.Join(t.TempDir(), "a", "b")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatal("cache dir not created")
	}
}
