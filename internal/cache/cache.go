// Package cache is a content-addressed store of completed campaign results.
//
// SHARP campaigns are deterministic functions of their configuration: a
// seeded simulated backend, a stopping rule, a warm-up count and a factor
// combination always reproduce the same tidy-data rows (the property the
// resume differentials assert). That makes completed cells cacheable by
// content address: the key is a hash of everything the outcome depends on
// (backend config, rule, seed, warm-ups, factors), the value is the cell's
// complete tidy-data log. A sweep, figure regeneration, or service campaign
// that re-requests an already-measured cell replays the cached rows through
// core.Launcher.ReplayLog — zero backend calls, bit-identical Result.
//
// On-disk layout (under the cache directory):
//
//	<key>.sharpb       the cell's rows (binary columnar log, atomic write)
//	<key>.json         entry metadata — written last, so it is the commit
//	                   point: an entry exists iff its .json does
//	counters.json      persisted hit/miss/store counters
//
// Crash safety mirrors the record package: both files are written via fsx
// (temp + rename), and the .json commit point is ordered after the rows, so
// a crash mid-Put leaves at worst an orphaned rows file that the next Put
// overwrites and Prune sweeps. Deletion inverts the order: Prune removes the
// .json first, so a crash mid-prune never leaves a committed entry whose
// rows are gone.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sharp/internal/fsx"
	"sharp/internal/obs"
	"sharp/internal/record"
)

// Key derives a content address from a kind tag (a versioned namespace such
// as "sweep-cell/v1" — bump it when the cached semantics change) and the
// parts the result depends on. Parts are length-prefixed before hashing, so
// ("ab","c") and ("a","bc") address different entries.
func Key(kind string, parts ...string) string {
	h := sha256.New()
	var n [8]byte
	feed := func(s string) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	feed(kind)
	for _, p := range parts {
		feed(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Meta describes one committed cache entry.
type Meta struct {
	// Kind is the namespace tag the entry was stored under.
	Kind string `json:"kind"`
	// Experiment is the experiment name of the cached campaign.
	Experiment string `json:"experiment"`
	// Rows counts the cached tidy-data rows.
	Rows int `json:"rows"`
	// Created is the store time (UTC).
	Created time.Time `json:"created"`
}

// Counters are the persisted lookup statistics.
type Counters struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Stores uint64 `json:"stores"`
}

// Stats summarizes a cache directory.
type Stats struct {
	Entries  int
	Bytes    int64
	Oldest   time.Time // zero when empty
	Counters Counters
}

// Store is a cache directory handle. The zero value is not usable; call
// Open. Methods are safe for concurrent use within one process (the service
// coordinator and parallel sweeps share a Store across goroutines).
type Store struct {
	// Tracer, when set, receives cache.hit / cache.miss / cache.store
	// events.
	Tracer obs.Tracer
	// Registry, when set, counts lookups into
	// sharp_cache_requests_total{result="hit"|"miss"|"store"}.
	Registry *obs.Registry
	// Clock supplies entry timestamps (defaults to time.Now; tests pin it).
	Clock func() time.Time

	dir      string
	mu       sync.Mutex
	counters Counters
}

const countersFile = "counters.json"

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s := &Store{dir: dir, Clock: time.Now}
	if data, err := os.ReadFile(filepath.Join(dir, countersFile)); err == nil {
		// A corrupt counters file resets the statistics; it never fails the
		// cache open, the counters are advisory.
		_ = json.Unmarshal(data, &s.counters)
	}
	return s, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) rowsPath(key string) string { return filepath.Join(s.dir, key+record.BinaryExt) }
func (s *Store) metaPath(key string) string { return filepath.Join(s.dir, key+".json") }

// Get looks up a committed entry, returning its rows and metadata, or
// (nil, nil, nil) on a miss. experiment labels the lookup in events. An
// entry whose rows file is missing or unreadable (a torn prune or a damaged
// disk) is self-healed: the commit point is removed and the lookup is a
// miss, so the caller re-measures instead of failing.
func (s *Store) Get(key, experiment string) ([]record.Row, *Meta, error) {
	data, err := os.ReadFile(s.metaPath(key))
	if errors.Is(err, os.ErrNotExist) {
		s.count("miss", obs.EventCacheMiss, map[string]any{"key": key, "experiment": experiment})
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("cache: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil, fmt.Errorf("cache: entry %s: %w", key, err)
	}
	rows, err := record.ReadFile(s.rowsPath(key))
	if err != nil || len(rows) != m.Rows {
		// Orphaned or damaged entry: demote to a miss and drop the commit
		// point so the next Put rebuilds it cleanly.
		os.Remove(s.metaPath(key))
		os.Remove(s.rowsPath(key))
		os.Remove(s.rowsPath(key) + ".idx")
		s.count("miss", obs.EventCacheMiss, map[string]any{"key": key, "experiment": experiment})
		return nil, nil, nil
	}
	s.count("hit", obs.EventCacheHit, map[string]any{"key": key, "experiment": experiment, "rows": len(rows)})
	return rows, &m, nil
}

// Put commits rows under key. The rows file lands first (atomically); the
// metadata commit point last.
func (s *Store) Put(key, kind, experiment string, rows []record.Row) error {
	if err := record.WriteRowsAtomicFormat(s.rowsPath(key), rows, record.FormatBinary); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	m := Meta{Kind: kind, Experiment: experiment, Rows: len(rows), Created: s.Clock().UTC()}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := fsx.WriteFile(s.metaPath(key), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	s.count("store", obs.EventCacheStore, map[string]any{"key": key, "experiment": experiment, "rows": len(rows)})
	return nil
}

// Stats walks the cache directory.
func (s *Store) Stats() (Stats, error) {
	entries, err := s.list()
	if err != nil {
		return Stats{}, err
	}
	s.mu.Lock()
	st := Stats{Counters: s.counters}
	s.mu.Unlock()
	for _, e := range entries {
		st.Entries++
		if st.Oldest.IsZero() || e.meta.Created.Before(st.Oldest) {
			st.Oldest = e.meta.Created
		}
		for _, p := range []string{s.metaPath(e.key), s.rowsPath(e.key), s.rowsPath(e.key) + ".idx"} {
			if fi, err := os.Stat(p); err == nil {
				st.Bytes += fi.Size()
			}
		}
	}
	return st, nil
}

// Prune removes committed entries created before cutoff and sweeps orphaned
// rows files left by interrupted Puts or prunes. For each entry the
// metadata commit point is deleted first, so a crash mid-prune leaves an
// orphan (invisible to Get), never a committed entry without rows.
func (s *Store) Prune(cutoff time.Time) (removed int, err error) {
	entries, err := s.list()
	if err != nil {
		return 0, err
	}
	committed := map[string]bool{}
	for _, e := range entries {
		committed[e.key] = true
		if !e.meta.Created.Before(cutoff) {
			continue
		}
		if err := os.Remove(s.metaPath(e.key)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return removed, fmt.Errorf("cache: %w", err)
		}
		os.Remove(s.rowsPath(e.key))
		os.Remove(s.rowsPath(e.key) + ".idx")
		committed[e.key] = false
		removed++
	}
	// Sweep orphans: rows files with no commit point.
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return removed, fmt.Errorf("cache: %w", err)
	}
	for _, de := range names {
		key, ok := strings.CutSuffix(de.Name(), record.BinaryExt)
		if !ok || committed[key] {
			continue
		}
		os.Remove(filepath.Join(s.dir, de.Name()))
		os.Remove(filepath.Join(s.dir, de.Name()+".idx"))
	}
	return removed, nil
}

// Counters returns the persisted lookup statistics.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

type listedEntry struct {
	key  string
	meta Meta
}

// list returns the committed entries (those with a readable .json).
func (s *Store) list() ([]listedEntry, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	var out []listedEntry
	for _, de := range names {
		name := de.Name()
		if name == countersFile {
			continue
		}
		key, ok := strings.CutSuffix(name, ".json")
		if !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var m Meta
		if err := json.Unmarshal(data, &m); err != nil {
			continue
		}
		out = append(out, listedEntry{key: key, meta: m})
	}
	return out, nil
}

// count persists one counter bump and emits the event/metric.
func (s *Store) count(result, event string, fields map[string]any) {
	s.mu.Lock()
	switch result {
	case "hit":
		s.counters.Hits++
	case "miss":
		s.counters.Misses++
	case "store":
		s.counters.Stores++
	}
	data, err := json.Marshal(&s.counters)
	if err == nil {
		// Advisory: a failed counters write never fails the lookup.
		_ = fsx.WriteFile(filepath.Join(s.dir, countersFile), append(data, '\n'), 0o644)
	}
	s.mu.Unlock()
	if s.Tracer != nil {
		s.Tracer.Emit(event, fields)
	}
	if s.Registry != nil {
		s.Registry.Counter("sharp_cache_requests_total",
			"Result cache lookups and stores by outcome.", "result", result).Inc()
	}
}
