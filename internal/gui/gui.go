// Package gui implements SHARP's web-based graphical user interface: an
// alternative to driving the launcher and reporter from the command line,
// aimed at the rapid-experimentation stage of the evaluation lifecycle
// (paper §IV, Fig. 3).
//
// Pages:
//
//	/                     dashboard: suite, machines, rules, run form
//	/run                  run an experiment, render its report
//	/compare              the comparison interface of Fig. 3
//	/experiments          list the paper's tables/figures
//	/experiments/{id}     regenerate one and render it
package gui

import (
	"context"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"time"

	"sharp/internal/backend"
	"sharp/internal/core"
	"sharp/internal/experiments"
	"sharp/internal/machine"
	"sharp/internal/report"
	"sharp/internal/rodinia"
	"sharp/internal/stopping"
)

// Server is the GUI's HTTP handler set.
type Server struct {
	// MaxRuns caps experiment sizes requested through the web form.
	MaxRuns int
	// Timeout bounds one experiment triggered from the GUI.
	Timeout time.Duration
	mux     *http.ServeMux
}

// New returns a GUI server with sane bounds.
func New() *Server {
	s := &Server{MaxRuns: 2000, Timeout: 2 * time.Minute, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("GET /run", s.handleRun)
	s.mux.HandleFunc("GET /compare", s.handleCompare)
	s.mux.HandleFunc("GET /experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>SHARP</title>
<style>
body { font-family: sans-serif; max-width: 60rem; margin: 2rem auto; padding: 0 1rem; }
table { border-collapse: collapse; } th, td { border: 1px solid #999; padding: .25rem .6rem; }
th { background: #eee; } form { margin: 1rem 0; padding: 1rem; border: 1px solid #ccc; }
label { display: inline-block; min-width: 8rem; } input, select { margin: .2rem 0; }
</style></head><body>
<h1>SHARP — distribution-based performance evaluation</h1>

<h2>Run an experiment</h2>
<form action="/run" method="get">
  <label>Workload</label>
  <select name="workload">{{range .Benchmarks}}<option>{{.Name}}</option>{{end}}</select><br>
  <label>Machine</label>
  <select name="machine">{{range .Machines}}<option>{{.Name}}</option>{{end}}</select><br>
  <label>Stopping rule</label>
  <select name="rule">{{range .Rules}}<option>{{.}}</option>{{end}}</select><br>
  <label>Threshold</label> <input name="threshold" value="0" size="6"> (0 = rule default)<br>
  <label>Max runs</label> <input name="max" value="1000" size="6"><br>
  <label>Seed</label> <input name="seed" value="42" size="8"><br>
  <button type="submit">Run</button>
</form>

<h2>Compare machines (Fig. 3 interface)</h2>
<form action="/compare" method="get">
  <label>Workload</label>
  <select name="workload">{{range .Benchmarks}}<option>{{.Name}}</option>{{end}}</select><br>
  <label>Machine A</label>
  <select name="a">{{range .Machines}}<option>{{.Name}}</option>{{end}}</select><br>
  <label>Machine B</label>
  <select name="b">{{range .Machines}}<option value="{{.Name}}" {{if eq .Name "machine3"}}selected{{end}}>{{.Name}}</option>{{end}}</select><br>
  <label>Runs</label> <input name="runs" value="500" size="6"><br>
  <label>Seed</label> <input name="seed" value="42" size="8"><br>
  <button type="submit">Compare</button>
</form>

<p><a href="/experiments">Paper experiments (tables &amp; figures)</a></p>

<h2>Benchmark suite (Table II)</h2>
<table><tr><th>Benchmark</th><th>Class</th><th>Parameters</th></tr>
{{range .Benchmarks}}<tr><td>{{.Name}}</td><td>{{if .CUDA}}CUDA{{else}}CPU{{end}}</td><td>{{.Params}}</td></tr>{{end}}
</table>

<h2>Testbed (Table III, simulated)</h2>
<table><tr><th>Machine</th><th>CPU</th><th>Cores</th><th>RAM</th><th>GPU</th></tr>
{{range .Machines}}<tr><td>{{.Name}}</td><td>{{.CPUModel}}</td><td>{{.Cores}}</td><td>{{.MemoryGB}} GB</td><td>{{if .GPU}}{{.GPU.Model}}{{else}}-{{end}}</td></tr>{{end}}
</table>
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	data := struct {
		Benchmarks []rodinia.Benchmark
		Machines   []*machine.Machine
		Rules      []string
	}{rodinia.Suite(), machine.Testbed(), stopping.Names()}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// runParams extracts and validates common experiment parameters.
func (s *Server) runParams(r *http.Request) (workload string, seed uint64, maxRuns int, err error) {
	workload = r.FormValue("workload")
	if workload == "" {
		return "", 0, 0, fmt.Errorf("missing workload")
	}
	if _, err := rodinia.ByName(workload); err != nil {
		return "", 0, 0, err
	}
	seed, _ = strconv.ParseUint(r.FormValue("seed"), 10, 64)
	if seed == 0 {
		seed = 42
	}
	maxRuns, _ = strconv.Atoi(r.FormValue("max"))
	if maxRuns <= 0 {
		maxRuns = 1000
	}
	if maxRuns > s.MaxRuns {
		maxRuns = s.MaxRuns
	}
	return workload, seed, maxRuns, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	workload, seed, maxRuns, err := s.runParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	machName := r.FormValue("machine")
	m, err := machine.ByName(machName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ruleName := r.FormValue("rule")
	if ruleName == "" {
		ruleName = "meta"
	}
	threshold, _ := strconv.ParseFloat(r.FormValue("threshold"), 64)
	rule, err := stopping.NewNamed(ruleName, threshold, stopping.Bounds{MaxSamples: maxRuns})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.Timeout)
	defer cancel()
	res, err := core.NewLauncher().Run(ctx, core.Experiment{
		Name:     fmt.Sprintf("%s@%s", workload, machName),
		Workload: workload,
		Backend:  backend.NewSim(m, seed),
		Rule:     rule,
		Day:      1,
		Seed:     seed,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	md := report.Result(res, report.Options{})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, report.ToHTML(res.Experiment.Name, md+backLink))
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	workload, seed, _, err := s.runParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	runs, _ := strconv.Atoi(r.FormValue("runs"))
	if runs <= 0 {
		runs = 500
	}
	if runs > s.MaxRuns {
		runs = s.MaxRuns
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.Timeout)
	defer cancel()
	launcher := core.NewLauncher()
	measure := func(machName string) (*core.Result, error) {
		m, err := machine.ByName(machName)
		if err != nil {
			return nil, err
		}
		return launcher.Run(ctx, core.Experiment{
			Name:     fmt.Sprintf("%s@%s", workload, machName),
			Workload: workload,
			Backend:  backend.NewSim(m, seed),
			Rule:     stopping.NewFixed(runs),
			Day:      1,
			Seed:     seed,
		})
	}
	ra, err := measure(r.FormValue("a"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rb, err := measure(r.FormValue("b"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cmp, err := core.CompareResults(ra, rb)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	md := report.Comparison(cmp, ra.Samples, rb.Samples, report.Options{})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, report.ToHTML("Comparison: "+workload, md+backLink))
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<!DOCTYPE html><html><head><title>Experiments</title></head><body>")
	fmt.Fprint(w, "<h1>Paper experiments</h1><ul>")
	for _, id := range experiments.IDs() {
		fmt.Fprintf(w, `<li><a href="/experiments/%s">%s</a></li>`, id, id)
	}
	fmt.Fprint(w, `</ul><p><a href="/">back</a></p></body></html>`)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	seed, _ := strconv.ParseUint(r.FormValue("seed"), 10, 64)
	if seed == 0 {
		seed = 2024
	}
	rep, err := experiments.Run(id, seed)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, report.ToHTML(id, rep.Render()+backLink))
}

const backLink = "\n\n[back](/)\n"
