package gui

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New())
	t.Cleanup(srv.Close)
	return srv
}

func TestIndexPage(t *testing.T) {
	srv := newServer(t)
	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"SHARP", "hotspot-CUDA", "machine3", "Nvidia H100 80GB",
		`action="/run"`, `action="/compare"`, "meta",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestRunExperimentPage(t *testing.T) {
	srv := newServer(t)
	code, body := get(t, srv, "/run?workload=hotspot&machine=machine1&rule=ks&threshold=0.1&max=500&seed=42")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	for _, want := range []string{"hotspot@machine1", "Distribution of exec_time", "<table>", "Histogram"} {
		if !strings.Contains(body, want) {
			t.Errorf("run page missing %q", want)
		}
	}
	if !strings.Contains(body, `<a href="/">back</a>`) {
		t.Error("back link missing")
	}
}

func TestRunValidation(t *testing.T) {
	srv := newServer(t)
	if code, _ := get(t, srv, "/run"); code != http.StatusBadRequest {
		t.Errorf("missing workload status = %d", code)
	}
	if code, _ := get(t, srv, "/run?workload=ghost&machine=machine1"); code != http.StatusBadRequest {
		t.Errorf("unknown workload status = %d", code)
	}
	if code, _ := get(t, srv, "/run?workload=bfs&machine=ghost"); code != http.StatusBadRequest {
		t.Errorf("unknown machine status = %d", code)
	}
	if code, _ := get(t, srv, "/run?workload=bfs&machine=machine1&rule=ghost"); code != http.StatusBadRequest {
		t.Errorf("unknown rule status = %d", code)
	}
}

func TestMaxRunsCapped(t *testing.T) {
	srv := httptest.NewServer(func() *Server {
		s := New()
		s.MaxRuns = 50
		return s
	}())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/run?workload=srad&machine=machine1&rule=fixed&threshold=100000&max=100000")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// The fixed rule would want 100000 runs; the server cap must hold it to 50.
	if !strings.Contains(string(body), "runs: 50") {
		t.Errorf("cap not applied:\n%s", truncateStr(string(body), 400))
	}
}

func TestComparePage(t *testing.T) {
	srv := newServer(t)
	code, body := get(t, srv, "/compare?workload=bfs-CUDA&a=machine1&b=machine3&runs=300&seed=42")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, truncateStr(body, 300))
	}
	for _, want := range []string{"Comparison", "NAMD", "KS", "speedup"} {
		if !strings.Contains(body, want) {
			t.Errorf("compare page missing %q", want)
		}
	}
}

func TestExperimentsPages(t *testing.T) {
	srv := newServer(t)
	code, body := get(t, srv, "/experiments")
	if code != http.StatusOK || !strings.Contains(body, "/experiments/fig5b") {
		t.Fatalf("experiments list: %d", code)
	}
	code, body = get(t, srv, "/experiments/table5")
	if code != http.StatusOK || !strings.Contains(body, "Table V") {
		t.Fatalf("table5 page: %d\n%s", code, truncateStr(body, 300))
	}
	if code, _ := get(t, srv, "/experiments/nope"); code != http.StatusNotFound {
		t.Errorf("unknown experiment status = %d", code)
	}
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
