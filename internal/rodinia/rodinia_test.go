package rodinia

import (
	"testing"
)

func TestSuiteMatchesTableII(t *testing.T) {
	suite := Suite()
	if len(suite) != 20 {
		t.Fatalf("suite size = %d, want 20", len(suite))
	}
	if len(CPU()) != 11 || len(CUDA()) != 9 {
		t.Fatalf("CPU/CUDA split = %d/%d, want 11/9", len(CPU()), len(CUDA()))
	}
	// Spot-check Table II parameter strings.
	params := map[string]string{
		"backprop":     "6553600",
		"bfs":          "graph1MW_6.txt",
		"hotspot":      "1024, 1024, 2, 4, temp_1024, power_1024",
		"hotspot-CUDA": "1024, 2, 4, temp_512, power_512",
		"kmeans":       "4, kdd_cup",
		"lud":          "8000",
		"lud-CUDA":     "1024",
		"sc":           "10, 20, 256, 65536, 65536, 1000, none, 4",
	}
	for name, want := range params {
		b, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if b.Params != want {
			t.Errorf("%s params = %q, want %q", name, b.Params, want)
		}
	}
}

func TestEveryBenchmarkHasKernelAndModel(t *testing.T) {
	for _, b := range Suite() {
		if b.Model == nil {
			t.Errorf("%s: no perf model", b.Name)
		}
		if b.NewKernel == nil {
			t.Errorf("%s: no kernel", b.Name)
			continue
		}
		k := b.NewKernel(1)
		if k == nil {
			t.Errorf("%s: kernel constructor returned nil", b.Name)
		}
	}
}

func TestCUDAKernelsRun(t *testing.T) {
	// CUDA stand-ins are quarter scale; they must still run and verify.
	for _, b := range CUDA() {
		k := b.NewKernel(3)
		res, err := k.Run()
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if err := k.Verify(res); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNamesOrdered(t *testing.T) {
	names := Names()
	if len(names) != 20 || names[0] != "backprop" {
		t.Fatalf("names = %v", names)
	}
}
