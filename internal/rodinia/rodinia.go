// Package rodinia assembles the paper's benchmark suite (Table II): the 20
// Rodinia benchmarks, each with its invocation parameters, a calibrated
// execution-time model (package perfmodel) for distribution-accurate
// simulation, and a real Go kernel implementation (package kernels) so the
// launcher can also execute genuine work.
package rodinia

import (
	"fmt"

	"sharp/internal/kernels"
	"sharp/internal/perfmodel"
)

// Benchmark is one Table II entry.
type Benchmark struct {
	// Name is the benchmark identifier (e.g. "hotspot-CUDA").
	Name string
	// Params is the parameter string from Table II.
	Params string
	// CUDA marks GPU benchmarks.
	CUDA bool
	// Model is the calibrated execution-time model for simulation.
	Model *perfmodel.Model
	// NewKernel constructs the real compute kernel for this benchmark.
	// CUDA variants run the same algorithm at reduced scale (standing in
	// for the device executing faster than the host).
	NewKernel func(seed uint64) kernels.Kernel
}

// kernelFor maps a benchmark base name to its kernel constructor; the cuda
// flag selects a smaller problem size.
func kernelFor(base string, cuda bool) func(uint64) kernels.Kernel {
	scale := 1
	if cuda {
		scale = 4 // CUDA variants: same algorithm, quarter-size stand-in
	}
	switch base {
	case "backprop":
		return func(s uint64) kernels.Kernel { return kernels.NewBackprop(64/scale, 16, 512/scale, s) }
	case "bfs":
		return func(s uint64) kernels.Kernel { return kernels.NewBFS(16384/scale, 6, s) }
	case "heartwall":
		return func(s uint64) kernels.Kernel { return kernels.NewHeartwall(20/scale+2, 20, 128, s) }
	case "hotspot":
		return func(s uint64) kernels.Kernel { return kernels.NewHotspot(256/scale, 20, s) }
	case "leukocyte":
		return func(s uint64) kernels.Kernel { return kernels.NewLeukocyte(5, 4, 96, s) }
	case "srad":
		return func(s uint64) kernels.Kernel { return kernels.NewSRAD(128/scale, 128/scale, 8, 0.5, s) }
	case "needle":
		return func(s uint64) kernels.Kernel { return kernels.NewNeedle(2048/scale, 10, s) }
	case "kmeans":
		return func(s uint64) kernels.Kernel { return kernels.NewKMeans(4096/scale, 8, 4, 10, s) }
	case "lavaMD":
		return func(s uint64) kernels.Kernel { return kernels.NewLavaMD(4, 32/scale, s) }
	case "lud":
		return func(s uint64) kernels.Kernel { return kernels.NewLUD(128/scale, s) }
	case "sc":
		return func(s uint64) kernels.Kernel { return kernels.NewStreamCluster(8192/scale, 16, 40, s) }
	default:
		return nil
	}
}

// Suite returns the 20 benchmarks in Table II order.
func Suite() []Benchmark {
	models := perfmodel.All()
	out := make([]Benchmark, 0, len(models))
	for _, m := range models {
		base := m.Bench
		cuda := m.CUDA
		if cuda {
			base = base[:len(base)-len("-CUDA")]
		}
		out = append(out, Benchmark{
			Name:      m.Bench,
			Params:    m.Params,
			CUDA:      cuda,
			Model:     m,
			NewKernel: kernelFor(base, cuda),
		})
	}
	return out
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("rodinia: unknown benchmark %q", name)
}

// CPU returns the 11 CPU benchmarks.
func CPU() []Benchmark {
	var out []Benchmark
	for _, b := range Suite() {
		if !b.CUDA {
			out = append(out, b)
		}
	}
	return out
}

// CUDA returns the 9 GPU benchmarks.
func CUDA() []Benchmark {
	var out []Benchmark
	for _, b := range Suite() {
		if b.CUDA {
			out = append(out, b)
		}
	}
	return out
}

// Names returns all benchmark names in Table II order.
func Names() []string {
	suite := Suite()
	out := make([]string, len(suite))
	for i, b := range suite {
		out[i] = b.Name
	}
	return out
}
