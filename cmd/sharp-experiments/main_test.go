package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPrintList(t *testing.T) {
	var buf bytes.Buffer
	printList(&buf)
	for _, want := range []string{"fig1b", "fig4", "table5", "tuning"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestExecuteWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	// Fast experiments only; the heavy figures run under the bench harness.
	err := execute(context.Background(), &buf, []string{"table4", "table5", "fig5c"}, 2024, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table4", "table5", "fig5c"} {
		data, err := os.ReadFile(filepath.Join(dir, id+".md"))
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(data) < 50 {
			t.Errorf("%s: suspiciously short output", id)
		}
	}
	if !strings.Contains(buf.String(), "Table V") {
		t.Error("stdout missing rendered content")
	}
}

func TestExecuteUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := execute(context.Background(), &buf, []string{"nope"}, 1, "", false); err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(buf.String(), "ERROR nope") {
		t.Error("error not reported in output")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := execute(context.Background(), &buf, []string{"fig5c"}, 7, "", false); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	// Strip the timing line, which legitimately varies.
	clean := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "regenerated in") {
				continue
			}
			out = append(out, line)
		}
		return strings.Join(out, "\n")
	}
	if clean(a) != clean(b) {
		t.Error("same seed produced different output")
	}
}
