// Command sharp-experiments regenerates the paper's tables and figures on
// the simulated testbed (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	sharp-experiments list
//	sharp-experiments all [--seed 2024] [--out results/]
//	sharp-experiments fig6 table5 ...
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"sharp/internal/cache"
	"sharp/internal/experiments"
	"sharp/internal/fsx"
	"sharp/internal/obs"
)

// metrics is the optional --metrics-addr registry (nil without the flag).
var metrics *obs.Registry

func main() {
	seed := flag.Uint64("seed", 2024, "experiment seed (results are deterministic per seed)")
	out := flag.String("out", "", "also write each result to <out>/<id>.md")
	resume := flag.Bool("resume", false, "skip experiments whose <out>/<id>.md already exists (continue an interrupted regeneration)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines fanning each experiment's benchmarks/machines/days (1 = sequential; output is byte-identical at any value)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while regenerating")
	cacheDir := flag.String("cache-dir", "", "content-addressed sample cache directory (re-regenerations replay cached draws bit-identically)")
	flag.Parse()
	// SIGINT/SIGTERM stop the regeneration between experiments; every
	// completed experiment's file is already atomically in place, so
	// re-running with --resume picks up exactly where it stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	experiments.SetParallelism(*parallel)
	if *metricsAddr != "" {
		srv, err := obs.ServeMetrics(ctx, *metricsAddr, obs.NewRegistry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "sharp-experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		metrics = srv.Registry()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", srv.Addr())
	}
	if *cacheDir != "" {
		store, err := cache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sharp-experiments:", err)
			os.Exit(1)
		}
		store.Registry = metrics // hit/miss rates on /metrics when both are on
		experiments.SetCache(store)
	}

	args := flag.Args()
	if len(args) == 0 || args[0] == "list" {
		printList(os.Stdout)
		return
	}
	ids := args
	if args[0] == "all" {
		ids = experiments.IDs()
	}
	if err := execute(ctx, os.Stdout, ids, *seed, *out, *resume); err != nil {
		fmt.Fprintln(os.Stderr, "sharp-experiments:", err)
		os.Exit(1)
	}
}

// printList writes the experiment index.
func printList(w io.Writer) {
	fmt.Fprintln(w, "Experiments (paper tables and figures):")
	for _, id := range experiments.IDs() {
		fmt.Fprintln(w, "  -", id)
	}
	fmt.Fprintln(w, "\nRun with: sharp-experiments all | sharp-experiments <id> [<id>...]")
}

// execute regenerates each experiment, printing results to w and optionally
// writing per-experiment files under outDir (atomically: an interrupt or
// crash never leaves a half-written result file). With resume, experiments
// whose output file already exists are skipped. The first failure is
// returned after all ids have been attempted; a cancelled context stops
// between experiments.
func execute(ctx context.Context, w io.Writer, ids []string, seed uint64, outDir string, resume bool) error {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	var firstErr error
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(w, "interrupted; rerun with --resume to continue\n")
			return err
		}
		if resume && outDir != "" {
			if _, err := os.Stat(filepath.Join(outDir, id+".md")); err == nil {
				fmt.Fprintf(w, "skip %s: %s/%s.md exists\n", id, outDir, id)
				continue
			}
		}
		start := time.Now()
		rep, err := experiments.Run(id, seed)
		if metrics != nil {
			status := "ok"
			if err != nil {
				status = "error"
			}
			metrics.Counter("sharp_experiments_total",
				"Paper experiments regenerated.", "status", status).Inc()
			metrics.Histogram("sharp_experiment_duration_seconds",
				"Wall-clock regeneration time per experiment.",
				[]float64{.1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120},
				"id", id).Observe(time.Since(start).Seconds())
		}
		if err != nil {
			fmt.Fprintf(w, "ERROR %s: %v\n", id, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		text := rep.Render()
		fmt.Fprintf(w, "%s\n(%s regenerated in %v)\n\n%s\n", text, id,
			time.Since(start).Round(time.Millisecond),
			"────────────────────────────────────────────────────────────")
		if outDir != "" {
			path := filepath.Join(outDir, id+".md")
			if err := fsx.WriteFile(path, []byte(text), 0o644); err != nil {
				if firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}
