// sharp trend: distribution-aware change-point analysis over an ordered
// series of campaign logs. Where `sharp regress` compares exactly two logs,
// `trend` ingests the whole recorded history (one tidy-data log per
// snapshot, in argument order), localizes the snapshots where the metric's
// sample distribution shifted (E-Divisive with a KS or NAMD divergence),
// classifies each shift with the regress gate, and exits non-zero on
// unacknowledged regressions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sharp/internal/backend"
	"sharp/internal/changepoint"
	"sharp/internal/obs"
	"sharp/internal/record"
	"sharp/internal/regress"
	"sharp/internal/similarity"
	"sharp/internal/stats"
	"sharp/internal/textplot"
)

func cmdTrend(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	metric := fs.String("metric", backend.MetricExecTime, "metric to analyze")
	divergence := fs.String("divergence", "ks", "distribution divergence: ks or namd")
	alpha := fs.Float64("alpha", 0.05, "permutation-test significance level")
	perms := fs.Int("perms", 199, "permutations per segment test")
	minSegment := fs.Int("min-segment", 2, "minimum snapshots per segment")
	seed := fs.Uint64("seed", 1, "permutation RNG seed")
	tolerance := fs.Float64("tolerance", 2, "tolerated median slowdown (percent) per change point")
	ack := fs.String("ack", "", "acknowledged change-point snapshot indices (comma-separated)")
	trace := fs.String("trace", "", "write detector events as JSONL to this path")
	parallel := fs.Int("parallel", 1, "parallel block decode when reading binary logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	record.SetReadParallelism(*parallel)
	paths := fs.Args()
	if len(paths) < 2**minSegment {
		return fmt.Errorf("trend: usage: sharp trend [flags] <log1> <log2> ... (need >= %d ordered logs)", 2**minSegment)
	}
	var metricKind similarity.Metric
	switch *divergence {
	case "ks":
		metricKind = similarity.MetricKS
	case "namd":
		metricKind = similarity.MetricNAMD
	default:
		return fmt.Errorf("trend: unknown -divergence %q (want ks or namd)", *divergence)
	}
	acked, err := parseAckIndices(*ack)
	if err != nil {
		return err
	}
	var tracer obs.Tracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		t := obs.NewJSONL(f)
		defer t.Close()
		tracer = t
	}

	groups := make([][]float64, len(paths))
	for i, path := range paths {
		rows, err := record.ReadFile(path)
		if err != nil {
			return err
		}
		vals := record.Values(record.Select(rows, record.Filter{Metric: *metric}))
		if len(vals) == 0 {
			return fmt.Errorf("trend: no %q rows in %s", *metric, path)
		}
		groups[i] = vals
	}

	cps, err := changepoint.DetectDistributions(groups, changepoint.DistOptions{
		Options: changepoint.Options{
			Alpha: *alpha, Permutations: *perms,
			MinSegment: *minSegment, Seed: *seed, Tracer: tracer,
		},
		Divergence: metricKind,
	})
	if err != nil {
		return err
	}

	medians := make([]float64, len(groups))
	for i, g := range groups {
		medians[i] = stats.Median(g)
	}
	fmt.Printf("trend: %d snapshots, metric %s, divergence %s\n", len(paths), *metric, *divergence)
	fmt.Printf("medians: %s  [%s .. %s]\n",
		textplot.Sparkline(medians), filepath.Base(paths[0]), filepath.Base(paths[len(paths)-1]))
	if len(cps) == 0 {
		fmt.Println("ok: no significant distribution change points")
		obs.Emit(tracer, obs.EventTrendGate, map[string]any{
			"series_checked": 1, "change_points": 0, "regressions": 0, "failed": false,
		})
		return nil
	}

	// Classify each change point with the regress gate over the pooled
	// samples on either side, then rank: failing verdicts first, then by
	// permutation p-value.
	type finding struct {
		cp  changepoint.ChangePoint
		out regress.Outcome
	}
	segs := changepoint.Segments(len(groups), cps)
	findings := make([]finding, len(cps))
	for i, cp := range cps {
		before := pool(groups[segs[i][0]:segs[i][1]])
		after := pool(groups[segs[i+1][0]:segs[i+1][1]])
		out, err := regress.Check(before, after, regress.Config{TolerancePct: *tolerance})
		if err != nil {
			return err
		}
		findings[i] = finding{cp, out}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		fi, fj := findings[i].out.Failed() && !acked[findings[i].cp.Index],
			findings[j].out.Failed() && !acked[findings[j].cp.Index]
		if fi != fj {
			return fi
		}
		return findings[i].cp.P < findings[j].cp.P
	})
	failures := 0
	for _, f := range findings {
		status := strings.ToUpper(string(f.out.Verdict))
		isAcked := acked[f.cp.Index]
		switch {
		case isAcked:
			status = "ACKED " + string(f.out.Verdict)
		case f.out.Failed():
			failures++
		}
		fmt.Printf("%-13s snapshot %d (%s): %s (perm p=%.3g, Q=%.3g)\n",
			status+":", f.cp.Index, filepath.Base(paths[f.cp.Index]), f.out.Explanation, f.cp.P, f.cp.Q)
		if f.out.Failed() && !isAcked {
			fmt.Printf("              acknowledge with -ack %d\n", f.cp.Index)
		}
		obs.Emit(tracer, obs.EventTrendChangePoint, map[string]any{
			"series": *metric, "index": f.cp.Index, "direction": string(f.out.Verdict),
			"before": float64(f.out.NBaseline), "after": float64(f.out.NCurrent),
			"magnitude_pct": f.out.MedianChangePct, "p": f.cp.P, "q": f.cp.Q,
		})
	}
	obs.Emit(tracer, obs.EventTrendGate, map[string]any{
		"series_checked": 1, "change_points": len(findings),
		"regressions": failures, "failed": failures > 0,
	})
	if failures > 0 {
		return fmt.Errorf("%d unacknowledged regression change point(s)", failures)
	}
	return nil
}

// pool concatenates the sample distributions of adjacent snapshots.
func pool(groups [][]float64) []float64 {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	out := make([]float64, 0, n)
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// parseAckIndices parses the trend -ack flag: comma-separated snapshot
// indices.
func parseAckIndices(s string) (map[int]bool, error) {
	out := map[int]bool{}
	if s == "" {
		return out, nil
	}
	for _, tok := range strings.Split(s, ",") {
		idx, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("trend: bad -ack index %q", tok)
		}
		out[idx] = true
	}
	return out, nil
}
