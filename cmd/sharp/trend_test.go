package main

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sharp/internal/randx"
	"sharp/internal/record"
)

// writeTrendLogs records a trajectory of tidy-data CSV logs, one per
// snapshot; the exec_time distribution's median shifts from muBefore to
// muAfter at snapshot index at.
func writeTrendLogs(t *testing.T, dir string, snapshots, samples, at int, muBefore, muAfter float64) []string {
	t.Helper()
	rng := randx.New(31)
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	paths := make([]string, snapshots)
	for i := range paths {
		mu := muBefore
		if i >= at {
			mu = muAfter
		}
		path := filepath.Join(dir, fmt.Sprintf("snap%02d.csv", i))
		w, err := record.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < samples; j++ {
			if err := w.Write(record.Row{
				Timestamp:  base.Add(time.Duration(i*samples+j) * time.Second),
				Experiment: "trend-test", Workload: "hotspot", Backend: "sim",
				Machine: "machine1", Day: 1, Run: j + 1, Instance: 1,
				Metric: "exec_time", Value: mu + 0.02*rng.NormFloat64(),
				Unit: "seconds", Status: "ok", Attempt: 1,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		paths[i] = path
	}
	return paths
}

func TestCmdTrendFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	paths := writeTrendLogs(t, dir, 12, 30, 6, 1.0, 1.5) // slower after snapshot 6
	args := append([]string{"trend", "--metric", "exec_time"}, paths...)
	err := runCLI(t, args...)
	if err == nil || !strings.Contains(err.Error(), "unacknowledged regression") {
		t.Fatalf("injected slowdown not flagged: %v", err)
	}
	// Acknowledging the change point clears the gate.
	args = append([]string{"trend", "--metric", "exec_time", "--ack", "6"}, paths...)
	if err := runCLI(t, args...); err != nil {
		t.Fatalf("acked regression still fails: %v", err)
	}
}

func TestCmdTrendImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	paths := writeTrendLogs(t, dir, 12, 30, 6, 1.5, 1.0) // faster after snapshot 6
	args := append([]string{"trend", "--metric", "exec_time"}, paths...)
	if err := runCLI(t, args...); err != nil {
		t.Fatalf("improvement flagged: %v", err)
	}
}

func TestCmdTrendStationaryPasses(t *testing.T) {
	dir := t.TempDir()
	paths := writeTrendLogs(t, dir, 10, 25, 0, 1.0, 1.0) // no shift
	args := append([]string{"trend", "--metric", "exec_time"}, paths...)
	if err := runCLI(t, args...); err != nil {
		t.Fatalf("stationary trajectory failed: %v", err)
	}
}

func TestCmdTrendNAMDDivergence(t *testing.T) {
	dir := t.TempDir()
	paths := writeTrendLogs(t, dir, 12, 30, 6, 1.0, 1.5)
	args := append([]string{"trend", "--metric", "exec_time", "--divergence", "namd"}, paths...)
	err := runCLI(t, args...)
	if err == nil || !strings.Contains(err.Error(), "unacknowledged regression") {
		t.Fatalf("NAMD variant missed the slowdown: %v", err)
	}
}

func TestCmdTrendErrors(t *testing.T) {
	dir := t.TempDir()
	paths := writeTrendLogs(t, dir, 6, 10, 0, 1.0, 1.0)
	if err := runCLI(t, "trend", paths[0]); err == nil {
		t.Error("too few logs accepted")
	}
	args := append([]string{"trend", "--divergence", "wasserstein"}, paths...)
	if err := runCLI(t, args...); err == nil {
		t.Error("unknown divergence accepted")
	}
	args = append([]string{"trend", "--metric", "nope"}, paths...)
	if err := runCLI(t, args...); err == nil {
		t.Error("missing metric accepted")
	}
	args = append([]string{"trend", "--ack", "x"}, paths...)
	if err := runCLI(t, args...); err == nil {
		t.Error("bad ack index accepted")
	}
}
