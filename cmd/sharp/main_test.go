package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI's command surface, exercised through run(args) end to end: every
// subcommand with valid and invalid inputs, plus the CSV/metadata artifact
// pipeline (run -> report -> classify -> recreate -> regress).

func TestUsageAndUnknown(t *testing.T) {
	if err := run(context.Background(), nil); err != nil {
		t.Fatalf("bare invocation: %v", err)
	}
	if err := run(context.Background(), []string{"help"}); err != nil {
		t.Fatalf("help: %v", err)
	}
	if err := run(context.Background(), []string{"frobnicate"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestRulesAndBenchmarks(t *testing.T) {
	if err := run(context.Background(), []string{"rules"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"benchmarks"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCommandValidation(t *testing.T) {
	if err := run(context.Background(), []string{"run"}); err == nil || !strings.Contains(err.Error(), "--workload") {
		t.Fatalf("missing workload: %v", err)
	}
	if err := run(context.Background(), []string{"run", "--workload", "ghost"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run(context.Background(), []string{"run", "--workload", "bfs", "--machine", "ghost"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if err := run(context.Background(), []string{"run", "--workload", "bfs", "--backend", "ghost"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run(context.Background(), []string{"run", "--workload", "bfs", "--rule", "ghost"}); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

func TestRunArtifactPipeline(t *testing.T) {
	dir := t.TempDir()
	csvA := filepath.Join(dir, "a.csv")
	csvB := filepath.Join(dir, "b.csv")
	meta := filepath.Join(dir, "meta.md")

	// 1. run: produce a baseline log + metadata on machine1.
	err := run(context.Background(), []string{"run", "--workload", "srad", "--machine", "machine1",
		"--rule", "fixed", "--threshold", "100",
		"--csv", csvA, "--meta", meta, "--quiet"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csvA); err != nil {
		t.Fatal(err)
	}

	// 2. run: a faster "current" log on machine3.
	err = run(context.Background(), []string{"run", "--workload", "srad", "--machine", "machine3",
		"--rule", "fixed", "--threshold", "100", "--csv", csvB, "--quiet"})
	if err != nil {
		t.Fatal(err)
	}

	// 3. report and classify over the recorded CSV.
	if err := run(context.Background(), []string{"report", csvA}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"classify", csvA}); err != nil {
		t.Fatal(err)
	}

	// 4. recreate from metadata (bit-for-bit reproduction path).
	if err := run(context.Background(), []string{"recreate", meta}); err != nil {
		t.Fatal(err)
	}

	// 5. regress: machine3 vs machine1 baseline is an improvement (exit ok);
	// the reverse is a regression (exit error).
	if err := run(context.Background(), []string{"regress", csvA, csvB}); err != nil {
		t.Fatalf("improvement flagged: %v", err)
	}
	if err := run(context.Background(), []string{"regress", csvB, csvA}); err == nil {
		t.Fatal("regression not flagged")
	}
}

func TestCompareCommand(t *testing.T) {
	err := run(context.Background(), []string{"compare", "--workload", "bfs-CUDA",
		"--machine", "machine1", "--machine2", "machine3",
		"--rule", "fixed", "--threshold", "150"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"compare"}); err == nil {
		t.Fatal("missing workload accepted")
	}
}

func TestDuetCommand(t *testing.T) {
	err := run(context.Background(), []string{"duet", "--workload", "bfs", "--workload2", "srad",
		"--machine", "machine1", "--pairs", "60"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"duet", "--workload", "bfs"}); err == nil {
		t.Fatal("missing workload2 accepted")
	}
}

func TestKernelBackendViaCLI(t *testing.T) {
	// Real kernels measured end to end (tiny fixed budget to stay fast).
	err := run(context.Background(), []string{"run", "--workload", "lud-CUDA", "--backend", "kernel",
		"--rule", "fixed", "--threshold", "5", "--quiet"})
	if err != nil {
		t.Fatal(err)
	}
	// Microbenchmarks are registered too.
	err = run(context.Background(), []string{"run", "--workload", "matmul", "--backend", "kernel",
		"--rule", "fixed", "--threshold", "5", "--quiet"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReportErrors(t *testing.T) {
	if err := run(context.Background(), []string{"report"}); err == nil {
		t.Fatal("missing path accepted")
	}
	if err := run(context.Background(), []string{"report", "/nonexistent.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	csv := filepath.Join(dir, "x.csv")
	if err := run(context.Background(), []string{"run", "--workload", "bfs", "--rule", "fixed",
		"--threshold", "20", "--csv", csv, "--quiet"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"report", "--metric", "nope", csv}); err == nil {
		t.Fatal("missing metric accepted")
	}
}

func TestSweepCommand(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "sweep.csv")
	err := run(context.Background(), []string{"sweep", "--workloads", "bfs", "--machines", "machine1",
		"--rule", "fixed", "--threshold", "30", "--csv", csv})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"sweep"}); err == nil {
		t.Fatal("missing workloads accepted")
	}
	if err := run(context.Background(), []string{"sweep", "--workloads", "bfs", "--days", "x"}); err == nil {
		t.Fatal("bad day accepted")
	}
}

func TestDaysCommand(t *testing.T) {
	err := run(context.Background(), []string{"days", "--workload", "hotspot", "--machine", "machine2",
		"--days", "5", "--runs", "200"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"days"}); err == nil {
		t.Fatal("missing workload accepted")
	}
	if err := run(context.Background(), []string{"days", "--workload", "bfs", "--machine", "ghost"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestRunFromConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "exp.yaml")
	os.WriteFile(cfg, []byte(`
experiment:
  name: cfg-run
  workload: bfs
  rule: fixed
  threshold: 25
  backend:
    type: sim
    machine: machine1
`), 0o644)
	if err := run(context.Background(), []string{"run", "--config", cfg, "--quiet"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"run", "--config", "/nonexistent.yaml"}); err == nil {
		t.Fatal("missing config accepted")
	}
}
