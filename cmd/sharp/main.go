// Command sharp is the SHARP launcher CLI: it runs measurement experiments
// over the available backends with dynamic stopping rules, records
// tidy-data CSV logs plus metadata, renders reports, compares
// distributions, and recreates experiments from their own records.
//
// Usage:
//
//	sharp run       --workload hotspot --backend sim --machine machine1 --rule ks
//	sharp compare   --workload bfs-CUDA --machine machine1 --machine2 machine3
//	sharp report    results.csv
//	sharp classify  results.csv
//	sharp recreate  metadata.md
//	sharp rules
//	sharp benchmarks
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sharp/internal/backend"
	"sharp/internal/budget"
	"sharp/internal/config"
	"sharp/internal/core"
	"sharp/internal/duet"
	"sharp/internal/faas"
	"sharp/internal/fsx"
	"sharp/internal/kernels"
	"sharp/internal/machine"
	"sharp/internal/microbench"
	"sharp/internal/obs"
	"sharp/internal/record"
	"sharp/internal/regress"
	"sharp/internal/report"
	"sharp/internal/resilience"
	"sharp/internal/rodinia"
	"sharp/internal/similarity"
	"sharp/internal/stats"
	"sharp/internal/stopping"
	"sharp/internal/sweep"
	"sharp/internal/textplot"
)

func main() {
	// SIGINT/SIGTERM cancel the context instead of killing the process, so
	// campaigns stop at a run boundary, flush their logs, checkpoint their
	// metadata, and leave a resumable state behind (sharp run --resume).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sharp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "run":
		return cmdRun(ctx, args[1:])
	case "compare":
		return cmdCompare(ctx, args[1:])
	case "report":
		return cmdReport(args[1:])
	case "classify":
		return cmdClassify(args[1:])
	case "recreate":
		return cmdRecreate(ctx, args[1:])
	case "regress":
		return cmdRegress(args[1:])
	case "trend":
		return cmdTrend(args[1:])
	case "duet":
		return cmdDuet(ctx, args[1:])
	case "sweep":
		return cmdSweep(ctx, args[1:])
	case "convert":
		return cmdConvert(args[1:])
	case "cache":
		return cmdCache(args[1:])
	case "days":
		return cmdDays(ctx, args[1:])
	case "rules":
		fmt.Println("Available stopping rules (use with --rule):")
		for _, name := range stopping.Names() {
			fmt.Println("  -", name)
		}
		return nil
	case "benchmarks":
		var rows [][]string
		for _, b := range rodinia.Suite() {
			kind := "CPU"
			if b.CUDA {
				kind = "CUDA"
			}
			rows = append(rows, []string{b.Name, kind, b.Params})
		}
		fmt.Println("Rodinia suite (Table II):")
		fmt.Print(textplot.Table([]string{"Benchmark", "Class", "Parameters"}, rows))
		fmt.Println("\nBuilt-in microbenchmarks (--backend kernel):")
		var micro [][]string
		for _, spec := range microbench.All() {
			micro = append(micro, []string{spec.Name, spec.Description})
		}
		fmt.Print(textplot.Table([]string{"Function", "Stresses"}, micro))
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Println(`sharp — distribution-based reproducible performance evaluation

Commands:
  run         run a measurement experiment with a dynamic stopping rule
  compare     measure a workload on two machines and compare distributions
  report      render a report from a tidy-data CSV log
  classify    characterize the distribution in a CSV log
  recreate    re-run an experiment from its metadata record
  regress     regression-gate a new CSV log against a baseline log
  trend       change-point analysis over an ordered series of campaign logs
  duet        paired (duet) comparison of two workloads on one backend
  sweep       run a factorial design over workloads x machines x days
  convert     convert a tidy-data log between CSV and binary (.sharpb)
  cache       inspect or prune a content-addressed result cache directory
  days        day-to-day reproducibility study (Fig. 5b-style heatmaps)
  rules       list stopping rules
  benchmarks  list the Rodinia suite (Table II)

Run 'sharp <command> -h' for command flags.`)
}

// runFlags defines the flags shared by run/compare.
type runFlags struct {
	workload      string
	backendName   string
	machineName   string
	faasURL       string
	invokeTimeout time.Duration
	rule          string
	threshold     float64
	maxRuns       int
	minRuns       int
	day           int
	seed          uint64
	concurrency   int
	parallel      int
	warmup        int
	timeout       time.Duration
	retries       int
	retryBackoff  time.Duration
	failureBudget float64
	maxConsecFail int
	chaos         float64
	outCSV        string
	outMeta       string
	format        string
	resume        bool
	flushEvery    int
	fsync         bool
	segmentRows   int
	quiet         bool
	trace         string
	progress      bool
	metricsAddr   string
}

func (rf *runFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&rf.workload, "workload", "", "workload/benchmark name (see 'sharp benchmarks')")
	fs.StringVar(&rf.backendName, "backend", "sim", "backend: sim | kernel | faas")
	fs.StringVar(&rf.machineName, "machine", "machine1", "simulated machine (sim backend)")
	fs.StringVar(&rf.faasURL, "url", "http://127.0.0.1:8080", "FaaS platform URL (faas backend)")
	fs.DurationVar(&rf.invokeTimeout, "invoke-timeout", 0, "faas backend: per-invoke deadline when neither --timeout nor the context sets one (0 = 30s default, <0 = none)")
	fs.StringVar(&rf.rule, "rule", "meta", "stopping rule (see 'sharp rules')")
	fs.Float64Var(&rf.threshold, "threshold", 0, "rule threshold (0 = rule default)")
	fs.IntVar(&rf.maxRuns, "max", 1000, "maximum runs")
	fs.IntVar(&rf.minRuns, "min", 10, "minimum runs")
	fs.IntVar(&rf.day, "day", 1, "measurement day (sim backend)")
	fs.Uint64Var(&rf.seed, "seed", 42, "experiment seed")
	fs.IntVar(&rf.concurrency, "concurrency", 1, "parallel instances per run")
	fs.IntVar(&rf.parallel, "parallel", runtime.GOMAXPROCS(0), "worker goroutines executing runs between stopping-rule checks (1 = sequential; results are deterministic either way)")
	fs.IntVar(&rf.warmup, "warmup", 0, "warm-up runs (not recorded)")
	fs.DurationVar(&rf.timeout, "timeout", 0, "per-instance timeout")
	fs.IntVar(&rf.retries, "retries", 1, "total attempts per run (>1 enables retry with backoff)")
	fs.DurationVar(&rf.retryBackoff, "retry-backoff", 0, "base retry backoff (0 = 10ms default)")
	fs.Float64Var(&rf.failureBudget, "failure-budget", 0, "abort past this failed-run fraction (0 = default 0.5, <0 disables)")
	fs.IntVar(&rf.maxConsecFail, "max-consecutive-failures", 0, "abort after this many consecutive failed runs (0 = default 10, <0 disables)")
	fs.Float64Var(&rf.chaos, "chaos", 0, "fault-injection rate in [0,1): deterministic errors (60%), timeouts (30%), latency spikes (10%)")
	fs.StringVar(&rf.outCSV, "csv", "", "stream the tidy-data CSV log to this path while the campaign runs")
	fs.StringVar(&rf.outMeta, "meta", "", "write metadata record to this path")
	fs.StringVar(&rf.format, "format", "auto", "log encoding for --csv: csv | binary | auto (by extension: .sharpb = binary)")
	fs.BoolVar(&rf.resume, "resume", false, "continue an interrupted campaign from --csv (and --meta's checkpoint if present); requires the same flags as the original run")
	fs.IntVar(&rf.flushEvery, "flush-every", 1, "flush the CSV log every N rows (0 = buffer until close)")
	fs.BoolVar(&rf.fsync, "fsync", false, "fsync the CSV log on every flush (crash-proof, slower)")
	fs.IntVar(&rf.segmentRows, "segment-rows", 0, "roll binary logs into ~N-row segments under <csv>.seg/ (0 = single file); repair and resume then touch only the last segment")
	fs.BoolVar(&rf.quiet, "quiet", false, "suppress the report; print one summary line")
	fs.StringVar(&rf.trace, "trace", "", "write a JSONL campaign event trace to this path ('-' = stderr)")
	fs.BoolVar(&rf.progress, "progress", false, "render live campaign progress on stderr")
	fs.StringVar(&rf.metricsAddr, "metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
}

// observability assembles the campaign tracer requested by --trace,
// --progress and --metrics-addr. The returned cleanup flushes the trace file
// and shuts the metrics sidecar down; cancelling ctx (SIGINT/SIGTERM) also
// shuts the sidecar down, so the listener never outlives the signal. It is
// safe to call when no sink was requested (the tracer is nil then, which
// disables tracing).
func (rf *runFlags) observability(ctx context.Context) (obs.Tracer, func(), error) {
	var tracers []obs.Tracer
	var closers []func()
	if rf.trace != "" {
		var w io.Writer = struct{ io.Writer }{os.Stderr} // hide stderr's Close
		var publish func() error
		if rf.trace != "-" {
			// Atomic trace export: events accumulate in a temp file that is
			// renamed into place on clean shutdown (including SIGINT, which
			// cancels the context and lets these closers run), so a crash
			// mid-campaign never leaves a torn trace at the target path.
			f, err := fsx.Create(rf.trace)
			if err != nil {
				return nil, nil, err
			}
			w, publish = f, f.Close
		}
		jt := obs.NewJSONL(w)
		tracers = append(tracers, jt)
		closers = append(closers, func() {
			if err := obs.Close(jt); err != nil {
				fmt.Fprintln(os.Stderr, "sharp: trace:", err)
			}
			if publish != nil {
				if err := publish(); err != nil {
					fmt.Fprintln(os.Stderr, "sharp: trace:", err)
				}
			}
		})
	}
	if rf.progress {
		tracers = append(tracers, obs.NewProgress(os.Stderr))
	}
	if rf.metricsAddr != "" {
		srv, err := obs.ServeMetrics(ctx, rf.metricsAddr, obs.NewRegistry())
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", srv.Addr())
		tracers = append(tracers, obs.NewMetricsSink(srv.Registry()))
		closers = append(closers, func() { _ = srv.Close() })
	}
	cleanup := func() {
		for _, c := range closers {
			c()
		}
	}
	if len(tracers) == 0 {
		return nil, cleanup, nil
	}
	return obs.Multi(tracers...), cleanup, nil
}

// buildBackend constructs the requested backend, applying chaos fault
// injection when --chaos is set.
func (rf *runFlags) buildBackend(machineName string) (backend.Backend, error) {
	var b backend.Backend
	switch rf.backendName {
	case "sim":
		m, err := machine.ByName(machineName)
		if err != nil {
			return nil, err
		}
		b = backend.NewSim(m, rf.seed)
	case "kernel", "inprocess":
		b = kernelBackend()
	case "faas":
		fc := faas.NewClient(rf.faasURL)
		fc.InvokeTimeout = rf.invokeTimeout
		b = fc
	default:
		return nil, fmt.Errorf("unknown backend %q (sim | kernel | faas)", rf.backendName)
	}
	if rf.chaos > 0 {
		if rf.chaos >= 1 {
			return nil, fmt.Errorf("--chaos rate %v out of range [0,1)", rf.chaos)
		}
		b = backend.NewChaos(b, backend.ChaosConfig{
			Seed:        rf.seed,
			ErrorRate:   rf.chaos * 0.6,
			TimeoutRate: rf.chaos * 0.3,
			LatencyRate: rf.chaos * 0.1,
		})
	}
	return b, nil
}

// kernelBackend registers every Rodinia kernel plus the eleven built-in
// microbenchmark functions as in-process workloads, so
// 'sharp run --backend kernel' measures real computations.
func kernelBackend() *backend.InProcess {
	b := backend.NewInProcess()
	microbench.Register(b)
	for _, bench := range rodinia.Suite() {
		ctor := bench.NewKernel
		b.Register(bench.Name, func(ctx context.Context, seed uint64) (map[string]float64, error) {
			k := ctor(seed)
			res, err := k.Run()
			if err != nil {
				return nil, err
			}
			if err := k.Verify(res); err != nil {
				return nil, err
			}
			m := map[string]float64{"ops": float64(res.Ops), "checksum": res.Checksum}
			if lk, ok := k.(*kernels.Leukocyte); ok {
				// Fine-grained phase metrics (Fig. 7 pipeline).
				if _, phases, err := lk.RunPhases(); err == nil {
					m["detection_ops"] = float64(phases[0])
					m["tracking_ops"] = float64(phases[1])
				}
			}
			return m, nil
		})
	}
	return b
}

func (rf *runFlags) buildRule() (stopping.Rule, error) {
	return stopping.NewNamed(rf.rule, rf.threshold, stopping.Bounds{
		MinSamples: rf.minRuns,
		MaxSamples: rf.maxRuns,
	})
}

func (rf *runFlags) experiment(machineName string) (core.Experiment, error) {
	b, err := rf.buildBackend(machineName)
	if err != nil {
		return core.Experiment{}, err
	}
	rule, err := rf.buildRule()
	if err != nil {
		return core.Experiment{}, err
	}
	retry := resilience.Policy{
		MaxAttempts: rf.retries,
		BaseDelay:   rf.retryBackoff,
		Seed:        rf.seed,
	}
	if rf.backendName == "faas" {
		// Transport-aware retry classification: refused/reset/timeout and
		// 5xx are transient; 4xx are configuration errors, never retried.
		retry.Retryable = faas.RetryableError
	}
	return core.Experiment{
		Name:        fmt.Sprintf("%s@%s", rf.workload, machineName),
		Workload:    rf.workload,
		Backend:     b,
		Rule:        rule,
		Concurrency: rf.concurrency,
		Parallel:    rf.parallel,
		Timeout:     rf.timeout,
		WarmupRuns:  rf.warmup,
		Day:         rf.day,
		Seed:        rf.seed,
		Retry:       retry,
		FailureBudget: core.FailureBudget{
			MaxFraction:    rf.failureBudget,
			MaxConsecutive: rf.maxConsecFail,
		},
	}, nil
}

// newLauncher builds a Launcher, honoring the SHARP_CLOCK environment
// variable (RFC3339 timestamp or integer Unix seconds): when set, the clock
// is frozen at that instant, making row timestamps — and therefore whole
// CSV logs — reproducible across processes. The crash-recovery end-to-end
// test uses it to prove an interrupted-and-resumed campaign is byte-identical
// to an uninterrupted one.
func newLauncher() *core.Launcher {
	l := core.NewLauncher()
	if v := os.Getenv("SHARP_CLOCK"); v != "" {
		if t, err := time.Parse(time.RFC3339, v); err == nil {
			l.Clock = func() time.Time { return t }
		} else if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
			t := time.Unix(secs, 0).UTC()
			l.Clock = func() time.Time { return t }
		} else {
			fmt.Fprintf(os.Stderr, "sharp: ignoring unparseable SHARP_CLOCK %q\n", v)
		}
	}
	return l
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var rf runFlags
	rf.register(fs)
	configPath := fs.String("config", "", "load the experiment from a JSON/YAML file (overrides other flags)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var exp core.Experiment
	if *configPath != "" {
		doc, err := config.ParseFile(*configPath)
		if err != nil {
			return err
		}
		exp, err = core.ExperimentFromConfig(doc, "experiment")
		if err != nil {
			return err
		}
		// Observability can also be configured from the file; flags win.
		if rf.trace == "" {
			rf.trace = doc.String("observability.trace", "")
		}
		if !rf.progress {
			rf.progress = doc.Bool("observability.progress", false)
		}
		if rf.metricsAddr == "" {
			rf.metricsAddr = doc.String("observability.metrics_addr", "")
		}
	} else {
		if rf.workload == "" {
			return fmt.Errorf("run: --workload is required")
		}
		var err error
		exp, err = rf.experiment(rf.machineName)
		if err != nil {
			return err
		}
	}
	tracer, cleanup, err := rf.observability(ctx)
	if err != nil {
		return err
	}
	defer cleanup()
	launcher := newLauncher()
	launcher.Tracer = tracer

	var res *core.Result
	var runErr error
	if rf.resume {
		res, runErr = rf.resumeCampaign(ctx, launcher, exp)
	} else {
		res, runErr = rf.streamCampaign(ctx, launcher, exp)
	}
	// Budget aborts and interrupts still yield a partial result: persist
	// what we have (failures are data, interrupts are checkpoints) and
	// report; the error is returned at the end.
	if runErr != nil && !errors.Is(runErr, core.ErrFailureBudget) && !errors.Is(runErr, core.ErrInterrupted) {
		return runErr
	}
	if rf.outMeta != "" {
		md := res.Metadata()
		if errors.Is(runErr, core.ErrInterrupted) {
			md.SetCheckpoint(res.Runs, len(res.Rows))
		}
		if err := md.WriteFile(rf.outMeta); err != nil {
			return errors.Join(runErr, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", rf.outMeta)
	}
	if errors.Is(runErr, core.ErrInterrupted) && rf.outCSV != "" {
		fmt.Fprintf(os.Stderr, "interrupted after run %d; continue with the same flags plus --resume\n", res.Runs)
	}
	if rf.quiet {
		sum, _ := res.Summary()
		fmt.Printf("%s: n=%d mean=%.4g median=%.4g modes=%d (%s)\n",
			exp.Name, sum.N, sum.Mean, sum.Median, res.Modes(), res.StopReason)
		return runErr
	}
	fmt.Print(report.Result(res, report.Options{}))
	return runErr
}

// csvOptions is the flush policy and encoding the --flush-every/--fsync/
// --format flags select.
func (rf *runFlags) csvOptions() (record.Options, error) {
	format, err := record.ParseFormat(rf.format)
	if err != nil {
		return record.Options{}, err
	}
	// Replay (resume, cache hits) decodes binary logs with the same
	// parallelism budget the campaign itself runs under.
	record.SetReadParallelism(rf.parallel)
	return record.Options{FlushEvery: rf.flushEvery, Sync: rf.fsync, Format: format, SegmentRows: rf.segmentRows}, nil
}

// streamCampaign runs the experiment, streaming rows to --csv (when set)
// through a durable writer as they are produced, so an interrupt or crash
// preserves every flushed row. The writer is closed (and its tail flushed)
// before returning, whatever the campaign outcome.
func (rf *runFlags) streamCampaign(ctx context.Context, launcher *core.Launcher, exp core.Experiment) (*core.Result, error) {
	var w *record.Writer
	if rf.outCSV != "" {
		opts, err := rf.csvOptions()
		if err != nil {
			return nil, err
		}
		if w, err = record.CreateDurable(rf.outCSV, opts); err != nil {
			return nil, err
		}
		launcher.Log = w
	}
	res, runErr := launcher.Run(ctx, exp)
	if w != nil {
		if err := w.Close(); err != nil {
			return res, errors.Join(runErr, err)
		}
		if res != nil {
			fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", rf.outCSV, len(res.Rows))
		}
	}
	return res, runErr
}

// resumeCampaign continues an interrupted campaign from the --csv log.
// Recovery first repairs the log: with a checkpoint in --meta (graceful
// interrupt) the log is truncated to the checkpointed row count — normally
// a no-op, since the interrupt flushed everything; without one (hard crash)
// the possibly-incomplete trailing run block and any torn final line are
// dropped and that run is re-executed. The repaired rows replay through the
// stopping rule, the deterministic backends fast-forward past them, and the
// campaign continues exactly where it stopped, appending to the same log.
func (rf *runFlags) resumeCampaign(ctx context.Context, launcher *core.Launcher, exp core.Experiment) (*core.Result, error) {
	if rf.outCSV == "" {
		return nil, fmt.Errorf("run: --resume requires --csv (the log to continue)")
	}
	haveCheckpoint := false
	if rf.outMeta != "" {
		if md, err := record.ParseMetadataFile(rf.outMeta); err == nil {
			if ckRun, ckRows, ok := md.Checkpoint(); ok {
				haveCheckpoint = true
				if err := record.TruncateRows(rf.outCSV, ckRows); err != nil {
					return nil, fmt.Errorf("run: resume: %w", err)
				}
				fmt.Fprintf(os.Stderr, "resuming from checkpoint: run %d (%d rows)\n", ckRun, ckRows)
			}
		}
	}
	if !haveCheckpoint {
		_, dropped, err := record.TruncateTrailingRun(rf.outCSV)
		if err != nil {
			return nil, fmt.Errorf("run: resume: %w", err)
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "resuming without checkpoint: dropped trailing run %d for re-execution\n", dropped)
		}
	}
	rows, err := record.ReadFile(rf.outCSV)
	if err != nil {
		return nil, fmt.Errorf("run: resume: %w", err)
	}
	opts, err := rf.csvOptions()
	if err != nil {
		return nil, err
	}
	w, _, err := record.OpenAppend(rf.outCSV, opts)
	if err != nil {
		return nil, fmt.Errorf("run: resume: %w", err)
	}
	launcher.Log = w
	res, runErr := launcher.Resume(ctx, exp, rows)
	if err := w.Close(); err != nil {
		return res, errors.Join(runErr, err)
	}
	if res != nil {
		fmt.Fprintf(os.Stderr, "wrote %s (%d rows, %d replayed)\n", rf.outCSV, len(res.Rows), len(rows))
	}
	return res, runErr
}

func cmdCompare(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var rf runFlags
	rf.register(fs)
	machine2 := fs.String("machine2", "machine3", "second simulated machine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if rf.workload == "" {
		return fmt.Errorf("compare: --workload is required")
	}
	tracer, cleanup, err := rf.observability(ctx)
	if err != nil {
		return err
	}
	defer cleanup()
	launcher := core.NewLauncher()
	launcher.Tracer = tracer
	expA, err := rf.experiment(rf.machineName)
	if err != nil {
		return err
	}
	resA, err := launcher.Run(ctx, expA)
	if err != nil {
		return err
	}
	expB, err := rf.experiment(*machine2)
	if err != nil {
		return err
	}
	resB, err := launcher.Run(ctx, expB)
	if err != nil {
		return err
	}
	cmp, err := core.CompareResults(resA, resB)
	if err != nil {
		return err
	}
	fmt.Print(report.Comparison(cmp, resA.Samples, resB.Samples, report.Options{}))
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	metric := fs.String("metric", backend.MetricExecTime, "metric to report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("report: usage: sharp report <log.csv>")
	}
	rows, err := record.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	values := record.Values(record.Select(rows, record.Filter{Metric: *metric}))
	if len(values) == 0 {
		return fmt.Errorf("report: no %q rows in %s", *metric, fs.Arg(0))
	}
	fmt.Print(report.Distribution(*metric, values, report.Options{}))
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	metric := fs.String("metric", backend.MetricExecTime, "metric to classify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("classify: usage: sharp classify <log.csv>")
	}
	rows, err := record.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	values := record.Values(record.Select(rows, record.Filter{Metric: *metric}))
	if len(values) == 0 {
		return fmt.Errorf("classify: no %q rows in %s", *metric, fs.Arg(0))
	}
	p := stats.CountModes(values)
	prof := core.Result{Samples: values}
	profile := prof.Profile()
	fmt.Printf("class: %s\nmodes: %d\nn: %d\nskewness: %.3f\nkurtosis: %.3f\nlag-1 autocorr: %.3f\nESS: %.1f\n",
		profile.Class, p, profile.N, profile.Skewness, profile.Kurtosis, profile.Lag1, profile.ESS)
	return nil
}

func cmdRegress(args []string) error {
	fs := flag.NewFlagSet("regress", flag.ExitOnError)
	metric := fs.String("metric", backend.MetricExecTime, "metric to gate on")
	alpha := fs.Float64("alpha", 0.01, "significance level")
	tolerance := fs.Float64("tolerance", 2, "tolerated median slowdown (percent)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("regress: usage: sharp regress <baseline.csv> <current.csv>")
	}
	out, err := regress.CheckFiles(fs.Arg(0), fs.Arg(1), *metric, regress.Config{
		Alpha:        *alpha,
		TolerancePct: *tolerance,
	})
	if err != nil {
		return err
	}
	fmt.Print(out.Render())
	if out.Failed() {
		return fmt.Errorf("performance regression detected")
	}
	return nil
}

func cmdDays(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("days", flag.ExitOnError)
	var rf runFlags
	rf.register(fs)
	nDays := fs.Int("days", 5, "number of measurement days")
	runs := fs.Int("runs", 1000, "runs per day")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if rf.workload == "" {
		return fmt.Errorf("days: --workload is required")
	}
	m, err := machine.ByName(rf.machineName)
	if err != nil {
		return err
	}
	launcher := core.NewLauncher()
	groups := make([][]float64, *nDays)
	labels := make([]string, *nDays)
	for d := 1; d <= *nDays; d++ {
		res, err := launcher.Run(ctx, core.Experiment{
			Name:     fmt.Sprintf("%s-day%d", rf.workload, d),
			Workload: rf.workload,
			Backend:  backend.NewSim(m, rf.seed),
			Rule:     stopping.NewFixed(*runs),
			Day:      d,
			Seed:     rf.seed,
		})
		if err != nil {
			return err
		}
		groups[d-1] = res.Samples
		labels[d-1] = fmt.Sprintf("day%d", d)
		sum, _ := res.Summary()
		fmt.Printf("day %d: mean %.4fs median %.4fs modes %d\n",
			d, sum.Mean, sum.Median, res.Modes())
	}
	// Both heatmaps share one set of prepared groups (each day sorted once)
	// and fan the upper-triangle pairs across --parallel workers.
	gs := similarity.NewGroups(groups)
	namd, err := similarity.MatrixGroups(similarity.MetricNAMD, gs, rf.parallel)
	if err != nil {
		return err
	}
	ks, err := similarity.MatrixGroups(similarity.MetricKS, gs, rf.parallel)
	if err != nil {
		return err
	}
	fmt.Printf("\nNAMD (point-summary similarity):\n\n%s\n", textplot.Heatmap(labels, labels, namd))
	fmt.Printf("KS (distribution similarity):\n\n%s\n", textplot.Heatmap(labels, labels, ks))
	dissimilar := 0
	total := 0
	for i := range ks {
		for j := i + 1; j < len(ks); j++ {
			total++
			if ks[i][j] > 0.1 {
				dissimilar++
			}
		}
	}
	fmt.Printf("%d/%d day pairs dissimilar under KS (> 0.1)\n", dissimilar, total)
	return nil
}

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workloads := fs.String("workloads", "", "comma-separated workloads (required)")
	machines := fs.String("machines", "machine1,machine3", "comma-separated machines")
	days := fs.String("days", "1", "comma-separated day indices")
	rule := fs.String("rule", "ks", "stopping rule per cell")
	threshold := fs.Float64("threshold", 0.1, "rule threshold")
	maxRuns := fs.Int("max", 300, "maximum runs per cell")
	seed := fs.Uint64("seed", 42, "experiment seed")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "cells measured concurrently (1 = sequential; results identical either way)")
	outCSV := fs.String("csv", "", "write the combined tidy log to this path")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache: completed cells are stored here and replayed on re-runs")
	budgetRuns := fs.Int("budget", -1, "total measured-run budget across all cells (-1 = exhaustive, 0 = adaptive with no cap)")
	budgetPolicy := fs.String("budget-policy", "ucb", "budget allocation policy: ucb, halving, or rr")
	batchRuns := fs.Int("batch-runs", 10, "runs granted to a cell per budget allocation")
	ledgerPath := fs.String("budget-ledger", "", "budget ledger checkpoint: loaded to resume spending, saved after the sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workloads == "" {
		return fmt.Errorf("sweep: --workloads is required")
	}
	var dayList []int
	for _, d := range strings.Split(*days, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(d))
		if err != nil {
			return fmt.Errorf("sweep: bad day %q", d)
		}
		dayList = append(dayList, n)
	}
	d := sweep.Design{
		Name:         "cli-sweep",
		Workloads:    splitTrim(*workloads),
		Machines:     splitTrim(*machines),
		Days:         dayList,
		RuleName:     *rule,
		Threshold:    *threshold,
		MaxRuns:      *maxRuns,
		Seed:         *seed,
		Parallel:     *parallel,
		CacheDir:     *cacheDir,
		Budget:       *budgetRuns,
		BudgetPolicy: *budgetPolicy,
		BatchRuns:    *batchRuns,
	}
	if c := newLauncher().Clock; c != nil {
		d.SetClock(c) // SHARP_CLOCK: byte-reproducible sweep CSVs
	}
	var out *sweep.Outcome
	var err error
	if *budgetRuns < 0 {
		out, err = sweep.Run(ctx, d)
	} else {
		if *ledgerPath != "" {
			if prior, lerr := budget.LoadLedger(*ledgerPath); lerr == nil {
				d.BudgetSpent = prior.Spent
				fmt.Fprintf(os.Stderr, "resuming budget ledger %s: %d runs already spent\n",
					*ledgerPath, prior.Spent)
			}
		}
		out, err = sweep.RunBudgeted(ctx, d)
		if out != nil && out.Budget != nil {
			lg := out.Budget
			if *ledgerPath != "" {
				if serr := lg.Save(*ledgerPath); serr != nil {
					fmt.Fprintf(os.Stderr, "sweep: saving budget ledger: %v\n", serr)
				}
			}
			cap := fmt.Sprintf("%d/%d", lg.Spent, lg.Budget)
			if lg.Budget == 0 {
				cap = fmt.Sprintf("%d (no cap)", lg.Spent)
			}
			status := "remaining"
			if lg.Exhausted {
				status = "exhausted"
			}
			fmt.Fprintf(os.Stderr, "budget: policy=%s spent=%s (%s), %d allocations across %d cells\n",
				lg.Policy, cap, status, len(lg.Allocations), len(lg.Cells))
		}
	}
	if err != nil {
		return err
	}
	if *outCSV != "" {
		if err := out.SaveCSV(*outCSV); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outCSV)
	}
	fmt.Print(out.Render())
	for _, factor := range []string{"workload", "machine", "day"} {
		eff, err := out.EffectOf(factor)
		if err != nil {
			return err
		}
		if len(eff.Levels) < 2 {
			continue
		}
		fmt.Printf("\nEffect of %s:\n\n", factor)
		var rows [][]string
		for _, l := range eff.Levels {
			rows = append(rows, []string{l.Level, fmt.Sprintf("%d", l.N),
				fmt.Sprintf("%.4g", l.Mean), fmt.Sprintf("%.4g", l.Median),
				fmt.Sprintf("%.4g", l.P95), fmt.Sprintf("%d", l.Modes)})
		}
		fmt.Print(textplot.Table([]string{"level", "n", "mean", "median", "p95", "modes"}, rows))
	}
	return nil
}

// splitTrim splits a comma list and trims whitespace.
func splitTrim(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func cmdDuet(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("duet", flag.ExitOnError)
	var rf runFlags
	rf.register(fs)
	workloadB := fs.String("workload2", "", "second workload (required)")
	pairs := fs.Int("pairs", 500, "maximum pairs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if rf.workload == "" || *workloadB == "" {
		return fmt.Errorf("duet: --workload and --workload2 are required")
	}
	be, err := rf.buildBackend(rf.machineName)
	if err != nil {
		return err
	}
	res, err := duet.Run(ctx, be, duet.Config{
		WorkloadA:      rf.workload,
		WorkloadB:      *workloadB,
		MaxPairs:       *pairs,
		Day:            rf.day,
		Seed:           rf.seed,
		AlternateOrder: true,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func cmdRecreate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("recreate", flag.ExitOnError)
	outCSV := fs.String("csv", "", "write the reproduction's CSV log to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("recreate: usage: sharp recreate <metadata.md>")
	}
	md, err := record.ParseMetadataFile(fs.Arg(0))
	if err != nil {
		return err
	}
	exp, err := core.RecreateExperiment(md, map[string]backend.Backend{
		"inprocess": kernelBackend(),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recreating experiment %q (workload %s, rule %s)\n",
		exp.Name, exp.Workload, md.Get("rule"))
	res, err := core.NewLauncher().Run(ctx, exp)
	if err != nil {
		return err
	}
	if *outCSV != "" {
		if err := res.SaveCSV(*outCSV); err != nil {
			return err
		}
	}
	fmt.Print(report.Result(res, report.Options{}))
	return nil
}
