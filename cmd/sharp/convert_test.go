package main

// Differential tests for `sharp convert` and for crash/resume on binary
// (.sharpb) logs through the CLI: conversion must be lossless in both
// directions, and a campaign recorded to a torn binary log must resume to
// the same bytes the uninterrupted campaign produced — with the CSV export
// byte-identical to a campaign that recorded CSV directly.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sharp/internal/cache"
	"sharp/internal/record"
)

// runCLI invokes the CLI entry point.
func runCLI(t *testing.T, args ...string) error {
	t.Helper()
	return run(context.Background(), args)
}

func TestConvertRoundTrip(t *testing.T) {
	t.Setenv("SHARP_CLOCK", "2026-07-04T12:00:00Z")
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.csv")
	if err := runCLI(t, "run", "--workload", "srad", "--machine", "machine1",
		"--rule", "fixed", "--threshold", "25", "--min", "10", "--quiet",
		"--chaos", "0.1", "--csv", orig); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}

	// csv -> binary -> csv reproduces the original bytes.
	bin := filepath.Join(dir, "log.sharpb")
	back := filepath.Join(dir, "back.csv")
	if err := runCLI(t, "convert", orig, bin); err != nil {
		t.Fatal(err)
	}
	if err := runCLI(t, "convert", bin, back); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("csv->binary->csv round trip differs (%d vs %d bytes)", len(got), len(want))
	}

	// The binary file really is binary, and --to overrides the extension.
	data, _ := os.ReadFile(bin)
	if !bytes.HasPrefix(data, []byte("SHARPB1\n")) {
		t.Fatal("convert to .sharpb did not produce a binary log")
	}
	forced := filepath.Join(dir, "forced.weird")
	if err := runCLI(t, "convert", "--to", "binary", orig, forced); err != nil {
		t.Fatal(err)
	}
	r1, err := record.ReadFile(forced)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := record.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("--to binary rows differ from source rows")
	}

	// Misuse is rejected.
	if err := runCLI(t, "convert", orig); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("missing output accepted: %v", err)
	}
	if err := runCLI(t, "convert", orig, orig); err == nil || !strings.Contains(err.Error(), "same path") {
		t.Fatalf("in-place convert accepted: %v", err)
	}
	if err := runCLI(t, "convert", "--to", "parquet", orig, back); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestResumeBinaryLogViaCLI(t *testing.T) {
	t.Setenv("SHARP_CLOCK", "2026-07-04T12:00:00Z")
	dir := t.TempDir()
	base := []string{"run", "--workload", "srad", "--machine", "machine1",
		"--rule", "fixed", "--threshold", "40", "--min", "10", "--quiet"}

	// Reference: the same campaign recorded as CSV and as binary.
	refCSV := filepath.Join(dir, "full.csv")
	if err := runCLI(t, append(append([]string{}, base...), "--csv", refCSV)...); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refCSV)
	if err != nil {
		t.Fatal(err)
	}
	fullBin := filepath.Join(dir, "full.sharpb")
	if err := runCLI(t, append(append([]string{}, base...), "--csv", fullBin)...); err != nil {
		t.Fatal(err)
	}
	wantBin, err := os.ReadFile(fullBin)
	if err != nil {
		t.Fatal(err)
	}

	// The binary log holds the same campaign: exported CSV is byte-identical.
	export := filepath.Join(dir, "export.csv")
	if err := runCLI(t, "convert", fullBin, export); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(export); !bytes.Equal(got, want) {
		t.Fatal("binary campaign exports different CSV than a CSV campaign")
	}

	// Hard crash: a byte-level prefix of the binary log (torn mid-block, no
	// index sidecar — exactly what kill -9 mid-flush leaves). Resume must
	// repair it and finish to the reference bytes.
	crash := filepath.Join(dir, "crash.sharpb")
	if err := os.WriteFile(crash, wantBin[:2*len(wantBin)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCLI(t, append(append([]string{}, base...), "--csv", crash, "--resume")...); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(crash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBin) {
		t.Fatalf("resumed binary log differs from uninterrupted (%d vs %d bytes)", len(got), len(wantBin))
	}

	// --format=binary forces the encoding regardless of extension.
	forcedPath := filepath.Join(dir, "forced.csv")
	if err := runCLI(t, append(append([]string{}, base...),
		"--csv", forcedPath, "--format", "binary")...); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(forcedPath)
	if !bytes.HasPrefix(data, []byte("SHARPB1\n")) {
		t.Fatal("--format binary ignored")
	}
	if err := runCLI(t, append(append([]string{}, base...),
		"--csv", forcedPath, "--format", "parquet")...); err == nil {
		t.Fatal("unknown --format accepted")
	}
}

func TestCacheCLI(t *testing.T) {
	t.Setenv("SHARP_CLOCK", "2026-07-04T12:00:00Z")
	dir := t.TempDir()
	// Populate the cache through a sweep.
	if err := runCLI(t, "sweep", "--workloads", "bfs", "--machines", "machine1",
		"--days", "1", "--rule", "fixed", "--threshold", "10", "--max", "10",
		"--cache-dir", dir); err != nil {
		t.Fatal(err)
	}
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if err := runCLI(t, "cache", "stats", "--dir", dir); err != nil {
		t.Fatal(err)
	}
	// Prune everything; the directory is left committed-entry-free.
	if err := runCLI(t, "cache", "prune", "--dir", dir, "--older-than", "0s"); err != nil {
		t.Fatal(err)
	}
	if st, err = store.Stats(); err != nil || st.Entries != 0 {
		t.Fatalf("after prune: entries = %d (err %v), want 0", st.Entries, err)
	}
	// Misuse is rejected.
	if err := runCLI(t, "cache"); err == nil {
		t.Fatal("bare cache accepted")
	}
	if err := runCLI(t, "cache", "stats"); err == nil {
		t.Fatal("cache stats without --dir accepted")
	}
	if err := runCLI(t, "cache", "defrag"); err == nil {
		t.Fatal("unknown cache subcommand accepted")
	}
}
