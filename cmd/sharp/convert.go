package main

// convert + cache subcommands: tooling around the binary columnar log and
// the content-addressed result cache.

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sharp/internal/cache"
	"sharp/internal/record"
)

// cmdConvert re-encodes a tidy-data log between CSV and the binary columnar
// format. The conversion is lossless in both directions (differential-tested
// in convert_test.go): rows stream through in block-sized batches, so a
// million-row log converts without materializing it.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "auto", "output encoding: csv | binary | auto (by output extension: .sharpb = binary)")
	segmentRows := fs.Int("segment-rows", 0, "roll a binary output into ~N-row segments under <out>.seg/ (0 = single file)")
	parallel := fs.Int("parallel", 0, "worker goroutines decoding binary input blocks (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	record.SetReadParallelism(*parallel)
	if fs.NArg() != 2 {
		return fmt.Errorf("convert: usage: sharp convert [--to csv|binary] <in> <out>")
	}
	in, out := fs.Arg(0), fs.Arg(1)
	if in == out {
		return fmt.Errorf("convert: input and output are the same path %q", in)
	}
	format, err := record.ParseFormat(*to)
	if err != nil {
		return fmt.Errorf("convert: %w", err)
	}
	w, err := record.CreateDurable(out, record.Options{Format: format, SegmentRows: *segmentRows})
	if err != nil {
		return fmt.Errorf("convert: %w", err)
	}
	n := 0
	if err := record.StreamFile(in, func(batch []record.Row) error {
		n += len(batch)
		return w.WriteAll(batch)
	}); err != nil {
		w.Close()
		os.Remove(out)
		return fmt.Errorf("convert: %w", err)
	}
	if err := w.Close(); err != nil {
		os.Remove(out)
		return fmt.Errorf("convert: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", out, n)
	return nil
}

// cmdCache inspects (stats) or expires (prune) a result cache directory.
func cmdCache(args []string) error {
	use := "cache: usage: sharp cache <stats|prune> --dir <dir> [--older-than 168h]"
	if len(args) == 0 {
		return fmt.Errorf("%s", use)
	}
	switch args[0] {
	case "stats":
		fs := flag.NewFlagSet("cache stats", flag.ExitOnError)
		dir := fs.String("dir", "", "cache directory (required)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *dir == "" {
			return fmt.Errorf("cache stats: --dir is required")
		}
		store, err := cache.Open(*dir)
		if err != nil {
			return err
		}
		st, err := store.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("cache %s:\n", store.Dir())
		fmt.Printf("  entries: %d\n", st.Entries)
		fmt.Printf("  bytes:   %d\n", st.Bytes)
		if !st.Oldest.IsZero() {
			fmt.Printf("  oldest:  %s\n", st.Oldest.UTC().Format(time.RFC3339))
		}
		fmt.Printf("  lookups: %d hits / %d misses / %d stores\n",
			st.Counters.Hits, st.Counters.Misses, st.Counters.Stores)
		return nil
	case "prune":
		fs := flag.NewFlagSet("cache prune", flag.ExitOnError)
		dir := fs.String("dir", "", "cache directory (required)")
		olderThan := fs.Duration("older-than", 7*24*time.Hour, "remove entries older than this")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *dir == "" {
			return fmt.Errorf("cache prune: --dir is required")
		}
		store, err := cache.Open(*dir)
		if err != nil {
			return err
		}
		removed, err := store.Prune(time.Now().Add(-*olderThan))
		if err != nil {
			return err
		}
		fmt.Printf("pruned %d entries older than %s from %s\n", removed, olderThan, store.Dir())
		return nil
	default:
		return fmt.Errorf("cache: unknown subcommand %q\n%s", args[0], use)
	}
}
