package main

// End-to-end crash/resume tests through the CLI: a campaign whose log is
// torn mid-row (kill -9) or checkpointed at a run boundary (SIGINT) must,
// after `run --resume` with the same flags, produce a CSV byte-identical to
// the uninterrupted campaign. SHARP_CLOCK freezes timestamps so the
// comparison covers every column.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sharp/internal/record"
)

func TestResumeReproducesInterruptedCampaign(t *testing.T) {
	t.Setenv("SHARP_CLOCK", "2026-07-04T12:00:00Z")
	dir := t.TempDir()
	fullCSV := filepath.Join(dir, "full.csv")
	fullMeta := filepath.Join(dir, "full.md")
	base := []string{"run", "--workload", "srad", "--machine", "machine1",
		"--rule", "fixed", "--threshold", "40", "--min", "10", "--quiet"}

	// Uninterrupted reference campaign.
	args := append(append([]string{}, base...), "--csv", fullCSV, "--meta", fullMeta)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(fullCSV)
	if err != nil {
		t.Fatal(err)
	}
	wantMeta, err := os.ReadFile(fullMeta)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("hard crash leaves a torn log, no checkpoint", func(t *testing.T) {
		// Simulate kill -9 mid-flush: a prefix of the log ending mid-line.
		lines := strings.SplitAfter(string(want), "\n")
		cut := len(lines) / 2
		torn := strings.Join(lines[:cut], "") + lines[cut][:len(lines[cut])/2]
		crashCSV := filepath.Join(dir, "crash.csv")
		if err := os.WriteFile(crashCSV, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
		args := append(append([]string{}, base...), "--csv", crashCSV, "--resume")
		if err := run(context.Background(), args); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(crashCSV)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("resumed log differs from uninterrupted (%d vs %d bytes)", len(got), len(want))
		}
	})

	t.Run("graceful interrupt resumes from the metadata checkpoint", func(t *testing.T) {
		rows, err := record.ReadFile(fullCSV)
		if err != nil {
			t.Fatal(err)
		}
		k := rows[len(rows)-1].Run / 2
		var prefix []record.Row
		for _, r := range rows {
			if r.Run <= k {
				prefix = append(prefix, r)
			}
		}
		graceCSV := filepath.Join(dir, "grace.csv")
		if err := record.WriteRowsAtomic(graceCSV, prefix); err != nil {
			t.Fatal(err)
		}
		md, err := record.ParseMetadataFile(fullMeta)
		if err != nil {
			t.Fatal(err)
		}
		md.SetCheckpoint(k, len(prefix))
		graceMeta := filepath.Join(dir, "grace.md")
		if err := md.WriteFile(graceMeta); err != nil {
			t.Fatal(err)
		}
		args := append(append([]string{}, base...),
			"--csv", graceCSV, "--meta", graceMeta, "--resume")
		if err := run(context.Background(), args); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(graceCSV)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("checkpoint-resumed log differs from uninterrupted (%d vs %d bytes)", len(got), len(want))
		}
		// The completed campaign's metadata clears the checkpoint and matches
		// the uninterrupted run's record exactly.
		gotMeta, err := os.ReadFile(graceMeta)
		if err != nil {
			t.Fatal(err)
		}
		back, err := record.ParseMetadataFile(graceMeta)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := back.Checkpoint(); ok {
			t.Error("completed resume left a checkpoint in the metadata")
		}
		if !bytes.Equal(gotMeta, wantMeta) {
			t.Errorf("resumed metadata differs from uninterrupted")
		}
	})

	t.Run("resume without a csv is rejected", func(t *testing.T) {
		args := append(append([]string{}, base...), "--resume")
		if err := run(context.Background(), args); err == nil ||
			!strings.Contains(err.Error(), "--csv") {
			t.Fatalf("want --csv requirement error, got %v", err)
		}
	})
}
