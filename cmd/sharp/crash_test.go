package main

// End-to-end crash/resume tests through the CLI: a campaign whose log is
// torn mid-row (kill -9) or checkpointed at a run boundary (SIGINT) must,
// after `run --resume` with the same flags, produce a CSV byte-identical to
// the uninterrupted campaign. SHARP_CLOCK freezes timestamps so the
// comparison covers every column.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sharp/internal/record"
)

func TestResumeReproducesInterruptedCampaign(t *testing.T) {
	t.Setenv("SHARP_CLOCK", "2026-07-04T12:00:00Z")
	dir := t.TempDir()
	fullCSV := filepath.Join(dir, "full.csv")
	fullMeta := filepath.Join(dir, "full.md")
	base := []string{"run", "--workload", "srad", "--machine", "machine1",
		"--rule", "fixed", "--threshold", "40", "--min", "10", "--quiet"}

	// Uninterrupted reference campaign.
	args := append(append([]string{}, base...), "--csv", fullCSV, "--meta", fullMeta)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(fullCSV)
	if err != nil {
		t.Fatal(err)
	}
	wantMeta, err := os.ReadFile(fullMeta)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("hard crash leaves a torn log, no checkpoint", func(t *testing.T) {
		// Simulate kill -9 mid-flush: a prefix of the log ending mid-line.
		lines := strings.SplitAfter(string(want), "\n")
		cut := len(lines) / 2
		torn := strings.Join(lines[:cut], "") + lines[cut][:len(lines[cut])/2]
		crashCSV := filepath.Join(dir, "crash.csv")
		if err := os.WriteFile(crashCSV, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
		args := append(append([]string{}, base...), "--csv", crashCSV, "--resume")
		if err := run(context.Background(), args); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(crashCSV)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("resumed log differs from uninterrupted (%d vs %d bytes)", len(got), len(want))
		}
	})

	t.Run("graceful interrupt resumes from the metadata checkpoint", func(t *testing.T) {
		rows, err := record.ReadFile(fullCSV)
		if err != nil {
			t.Fatal(err)
		}
		k := rows[len(rows)-1].Run / 2
		var prefix []record.Row
		for _, r := range rows {
			if r.Run <= k {
				prefix = append(prefix, r)
			}
		}
		graceCSV := filepath.Join(dir, "grace.csv")
		if err := record.WriteRowsAtomic(graceCSV, prefix); err != nil {
			t.Fatal(err)
		}
		md, err := record.ParseMetadataFile(fullMeta)
		if err != nil {
			t.Fatal(err)
		}
		md.SetCheckpoint(k, len(prefix))
		graceMeta := filepath.Join(dir, "grace.md")
		if err := md.WriteFile(graceMeta); err != nil {
			t.Fatal(err)
		}
		args := append(append([]string{}, base...),
			"--csv", graceCSV, "--meta", graceMeta, "--resume")
		if err := run(context.Background(), args); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(graceCSV)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("checkpoint-resumed log differs from uninterrupted (%d vs %d bytes)", len(got), len(want))
		}
		// The completed campaign's metadata clears the checkpoint and matches
		// the uninterrupted run's record exactly.
		gotMeta, err := os.ReadFile(graceMeta)
		if err != nil {
			t.Fatal(err)
		}
		back, err := record.ParseMetadataFile(graceMeta)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := back.Checkpoint(); ok {
			t.Error("completed resume left a checkpoint in the metadata")
		}
		if !bytes.Equal(gotMeta, wantMeta) {
			t.Errorf("resumed metadata differs from uninterrupted")
		}
	})

	t.Run("resume without a csv is rejected", func(t *testing.T) {
		args := append(append([]string{}, base...), "--resume")
		if err := run(context.Background(), args); err == nil ||
			!strings.Contains(err.Error(), "--csv") {
			t.Fatalf("want --csv requirement error, got %v", err)
		}
	})
}

// segmentedState snapshots a segmented log for byte comparison: the manifest
// plus every segment file, keyed by name. Sidecar .idx files are a cache and
// excluded.
func segmentedState(t *testing.T, path string) map[string][]byte {
	t.Helper()
	state := map[string][]byte{}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	state["manifest"] = b
	des, err := os.ReadDir(path + ".seg")
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".sharpb") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(path+".seg", de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		state[de.Name()] = b
	}
	return state
}

// TestSegmentedResumeRepairsTornManifest is the kill -9 shape for a segmented
// log where the crash also tore the manifest itself: the active segment ends
// mid-frame with no sidecar index (one is only written on clean close), and
// the manifest at <path> is a truncated prefix (a torn rewrite). `run
// --resume` with the same flags must rebuild the manifest from the segments,
// drop the torn trailing run, re-execute it, and leave every file — manifest
// and all segments — byte-identical to the uninterrupted campaign.
func TestSegmentedResumeRepairsTornManifest(t *testing.T) {
	t.Setenv("SHARP_CLOCK", "2026-07-04T12:00:00Z")
	dir := t.TempDir()
	full := filepath.Join(dir, "full.sharpb")
	base := []string{"run", "--workload", "srad", "--machine", "machine1",
		"--rule", "fixed", "--threshold", "40", "--min", "10", "--quiet",
		"--segment-rows", "8"}

	args := append(append([]string{}, base...), "--csv", full)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	want := segmentedState(t, full)
	if len(want) < 4 { // manifest + at least three segments: rolling happened
		t.Fatalf("campaign produced only %d segmented files; raise rows or lower --segment-rows", len(want)-1)
	}

	// Reconstruct the crashed state from the reference bytes.
	crash := filepath.Join(dir, "crash.sharpb")
	if err := os.MkdirAll(crash+".seg", 0o755); err != nil {
		t.Fatal(err)
	}
	active := ""
	for name, b := range want {
		if name == "manifest" {
			continue
		}
		if active == "" || name > active {
			active = name
		}
		if err := os.WriteFile(filepath.Join(crash+".seg", name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the active segment mid-frame (no sidecar index: a real crash never
	// wrote one) and the manifest mid-write.
	ab := want[active]
	if err := os.WriteFile(filepath.Join(crash+".seg", active), ab[:len(ab)-13], 0o644); err != nil {
		t.Fatal(err)
	}
	mb := want["manifest"]
	if err := os.WriteFile(crash, mb[:len(mb)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	args = append(append([]string{}, base...), "--csv", crash, "--resume")
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	got := segmentedState(t, crash)
	if len(got) != len(want) {
		t.Fatalf("resumed log has %d files, reference has %d", len(got), len(want))
	}
	for name, wb := range want {
		gb, ok := got[name]
		if !ok {
			t.Fatalf("resumed log is missing %s", name)
		}
		if !bytes.Equal(gb, wb) {
			t.Errorf("%s differs after resume (%d vs %d bytes)", name, len(gb), len(wb))
		}
	}
	// And the repaired log replays to the same rows as the reference.
	wantRows, err := record.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	gotRows, err := record.ReadFile(crash)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("resumed log replays %d rows, reference %d", len(gotRows), len(wantRows))
	}
}
