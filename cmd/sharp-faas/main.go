// Command sharp-faas runs the simulated serverless platform: a Knative-like
// HTTP function service backed by the simulated GPU machines (Machines 1
// and 3 of Table III). The sharp CLI's faas backend and the stopping-rule
// experiment of §V-C send requests to it.
//
// Usage:
//
//	sharp-faas --addr :8080 --seed 42
//	curl -XPOST localhost:8080/invoke -d '{"workload":"bfs-CUDA","day":1,"run":1}'
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"sharp/internal/faas"
	"sharp/internal/machine"
	"sharp/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 42, "platform seed")
	idle := flag.Duration("idle-timeout", 10*time.Minute, "warm-instance idle timeout (0 = keep warm forever)")
	workers := flag.String("workers", "machine1,machine3", "comma-separated worker machines")
	trace := flag.String("trace", "", "write a JSONL platform event trace to this path ('-' = stderr)")
	flag.Parse()

	var machines []*machine.Machine
	for _, name := range strings.Split(*workers, ",") {
		m, err := machine.ByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatalf("sharp-faas: %v", err)
		}
		machines = append(machines, m)
	}
	p := faas.NewPlatform(machines, *seed)
	p.IdleTimeout = *idle
	if *trace != "" {
		w := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				log.Fatalf("sharp-faas: %v", err)
			}
			w = f
		}
		p.SetTracer(obs.NewJSONL(w))
	}

	fmt.Printf("sharp-faas: serving on %s with workers %v (seed %d)\n",
		*addr, p.WorkerNames(), *seed)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           p.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
