// Command sharp-gui serves SHARP's web interface (paper §IV, Fig. 3): run
// experiments, compare machines, and browse the paper's regenerated tables
// and figures from a browser.
//
// Usage:
//
//	sharp-gui --addr :8090
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"sharp/internal/gui"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	maxRuns := flag.Int("max-runs", 2000, "cap on runs per web-triggered experiment")
	flag.Parse()

	s := gui.New()
	s.MaxRuns = *maxRuns
	fmt.Printf("sharp-gui: serving on %s\n", *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
