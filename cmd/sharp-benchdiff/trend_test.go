package main

import (
	"math"
	"strings"
	"testing"

	"sharp/internal/randx"
)

// TestWithinTolSymmetry is the regression test for the asymmetric gate bug:
// the tolerance used to scale by |a| only, so withinTol(a, b) and
// withinTol(b, a) disagreed near zero baselines and the gate's verdict
// depended on which snapshot happened to be the baseline.
func TestWithinTolSymmetry(t *testing.T) {
	cases := [][2]float64{
		{0, 1e-7}, {1e-7, 0}, {100, 100.00001}, {100.00001, 100},
		{-5, -5.0000001}, {0.5, 0.5000004}, {1e9, 1e9 + 500},
	}
	for _, c := range cases {
		if withinTol(c[0], c[1], 1e-6) != withinTol(c[1], c[0], 1e-6) {
			t.Errorf("withinTol(%g, %g) != withinTol(%g, %g)", c[0], c[1], c[1], c[0])
		}
	}
	// Zero baseline no longer accepts arbitrary drift: |0 - 2e-6| > tol*max(1,..).
	if withinTol(0, 2e-6, 1e-6) {
		t.Error("zero baseline accepted drift beyond tolerance")
	}
	if !withinTol(0, 5e-7, 1e-6) {
		t.Error("sub-tolerance drift from zero rejected")
	}
	// Large magnitudes still get relative scaling.
	if !withinTol(1e9, 1e9+500, 1e-6) {
		t.Error("relative tolerance lost for large magnitudes")
	}
}

// TestGateWarnsOnUnguardedBenchmarks covers the second gate bug: benchmarks
// present only in the current run used to be silently skipped, so a new
// benchmark carrying a gated column was never checked against anything.
func TestGateWarnsOnUnguardedBenchmarks(t *testing.T) {
	_, results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Baseline knows only one of the two benchmarks.
	base := &Snapshot{Benchmarks: []*BenchmarkResult{
		{Name: "BenchmarkFig4Distributions", Metrics: map[string]float64{"multimodal_%": 70.0}},
	}}
	cols := []string{"multimodal_%", "savings_%"}
	v, w := gate(base, results, cols, nil, 1e-6)
	if len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	if len(w) != 1 || !strings.Contains(w[0], "BenchmarkFig1bAutoStopping") {
		t.Fatalf("expected unguarded-benchmark warning, got %v", w)
	}
	// A benchmark the baseline knows, but with a gated column it lacks,
	// warns at metric granularity.
	base.Benchmarks = append(base.Benchmarks,
		&BenchmarkResult{Name: "BenchmarkFig1bAutoStopping", Metrics: map[string]float64{"KS_to_truth": 0.06561}})
	v, w = gate(base, results, cols, nil, 1e-6)
	if len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	if len(w) != 1 || !strings.Contains(w[0], "savings_%") {
		t.Fatalf("expected unguarded-metric warning, got %v", w)
	}
	// Fully covered baseline: no warnings.
	base.Benchmarks[1].Metrics["savings_%"] = 87.22
	if _, w = gate(base, results, cols, nil, 1e-6); len(w) != 0 {
		t.Fatalf("unexpected warnings: %v", w)
	}
}

// synthSnaps builds a snapshot trajectory for one benchmark with the given
// per-snapshot metric values (noise-free plus tiny deterministic jitter so
// the series is not constant).
func synthSnaps(metric string, values []float64, timings []float64) ([]string, []*Snapshot) {
	rng := randx.New(9)
	paths := make([]string, len(values))
	snaps := make([]*Snapshot, len(values))
	for i, v := range values {
		b := &BenchmarkResult{
			Name:    "BenchmarkSynthetic",
			Metrics: map[string]float64{metric: v + 0.001*rng.NormFloat64()},
		}
		if timings != nil {
			b.NsPerOp = timings[i]
		}
		paths[i] = "BENCH_synth.json"
		snaps[i] = &Snapshot{Benchmarks: []*BenchmarkResult{b}}
	}
	return paths, snaps
}

func level(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestRunTrendFailsOnInjectedRegression is the injected-regression fixture:
// a higher-better metric (speedup_x) drops mid-trajectory, and the trend
// gate must report a failure (non-zero exit in main).
func TestRunTrendFailsOnInjectedRegression(t *testing.T) {
	values := append(level(8, 5.0), level(8, 3.0)...) // speedup 5x -> 3x at index 8
	paths, snaps := synthSnaps("speedup_x", values, nil)
	o := trendOptions{HigherBetter: map[string]bool{"speedup_x": true}, Ack: map[string]bool{}, Seed: 1}
	var buf strings.Builder
	failures := runTrend(paths, snaps, o, &buf)
	if failures == 0 {
		t.Fatalf("injected speedup drop not flagged:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "speedup_x@8") {
		t.Fatalf("report missing regression/ack token:\n%s", out)
	}
	// Acknowledging the change point clears the gate.
	o.Ack = map[string]bool{"BenchmarkSynthetic/speedup_x@8": true}
	buf.Reset()
	if failures := runTrend(paths, snaps, o, &buf); failures != 0 {
		t.Fatalf("acked regression still fails:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ACKED") {
		t.Fatalf("acked finding not reported:\n%s", buf.String())
	}
}

// An improvement in a higher-better metric must not fail the gate.
func TestRunTrendImprovementPasses(t *testing.T) {
	values := append(level(8, 3.0), level(8, 5.0)...)
	paths, snaps := synthSnaps("speedup_x", values, nil)
	o := trendOptions{HigherBetter: map[string]bool{"speedup_x": true}, Ack: map[string]bool{}, Seed: 1}
	var buf strings.Builder
	if failures := runTrend(paths, snaps, o, &buf); failures != 0 {
		t.Fatalf("improvement flagged as regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "IMPROVEMENT") {
		t.Fatalf("improvement not reported:\n%s", buf.String())
	}
}

// An exact reproduction metric drifting in either direction is a failure.
func TestRunTrendExactMetricDriftFails(t *testing.T) {
	values := append(level(8, 70.0), level(8, 75.0)...) // multimodal_% shifts up
	paths, snaps := synthSnaps("multimodal_%", values, nil)
	o := trendOptions{HigherBetter: map[string]bool{}, Ack: map[string]bool{}, Seed: 1}
	var buf strings.Builder
	if failures := runTrend(paths, snaps, o, &buf); failures == 0 {
		t.Fatalf("exact-metric drift not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "DRIFT") {
		t.Fatalf("drift not reported:\n%s", buf.String())
	}
}

// Timing series are opt-in: absent by default, watched (up = regression)
// under -trend-timings.
func TestRunTrendTimingsOptIn(t *testing.T) {
	timings := append(level(8, 1000), level(8, 1500)...) // ns/op rises 50%
	paths, snaps := synthSnaps("savings_%", level(16, 87), timings)
	o := trendOptions{HigherBetter: map[string]bool{}, Ack: map[string]bool{}, Seed: 1}
	var buf strings.Builder
	if failures := runTrend(paths, snaps, o, &buf); failures != 0 {
		t.Fatalf("timings gated without opt-in:\n%s", buf.String())
	}
	o.Timings = true
	buf.Reset()
	if failures := runTrend(paths, snaps, o, &buf); failures == 0 {
		t.Fatalf("ns/op rise not flagged under -trend-timings:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ns/op") {
		t.Fatalf("report missing ns/op series:\n%s", buf.String())
	}
}

func TestBuildTrendSeriesDeterministicOrder(t *testing.T) {
	_, snaps := synthSnaps("savings_%", level(6, 87), level(6, 1000))
	for i, s := range snaps {
		s.Benchmarks[0].Metrics["multimodal_%"] = 70 + float64(i)
	}
	o := trendOptions{Timings: true}
	series := buildTrendSeries(snaps, o)
	var got []string
	for _, s := range series {
		got = append(got, s.Bench+"/"+s.Metric)
	}
	want := []string{
		"BenchmarkSynthetic/B/op", "BenchmarkSynthetic/allocs/op",
		"BenchmarkSynthetic/multimodal_%", "BenchmarkSynthetic/ns/op",
		"BenchmarkSynthetic/savings_%",
	}
	// B/op and allocs/op are zero in the fixture, so they are dropped.
	want = []string{
		"BenchmarkSynthetic/multimodal_%", "BenchmarkSynthetic/ns/op",
		"BenchmarkSynthetic/savings_%",
	}
	if len(got) != len(want) {
		t.Fatalf("series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
	for _, s := range series {
		if s.Metric == "ns/op" && !s.Timing {
			t.Error("ns/op not marked as timing")
		}
	}
}

func TestRunTrendDeterministicOutput(t *testing.T) {
	values := append(level(8, 5.0), level(8, 3.0)...)
	paths, snaps := synthSnaps("speedup_x", values, nil)
	o := trendOptions{HigherBetter: map[string]bool{"speedup_x": true}, Ack: map[string]bool{}, Seed: 42}
	var a, b strings.Builder
	runTrend(paths, snaps, o, &a)
	runTrend(paths, snaps, o, &b)
	if a.String() != b.String() {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestParseAcks(t *testing.T) {
	acks, err := parseAcks("BenchmarkFoo/speedup_x@8, BenchmarkBar/ns/op@3")
	if err != nil {
		t.Fatal(err)
	}
	if !acks["BenchmarkFoo/speedup_x@8"] || !acks["BenchmarkBar/ns/op@3"] {
		t.Fatalf("acks = %v", acks)
	}
	for _, bad := range []string{"nope", "a/b@x", "@3", "a@3"} {
		if _, err := parseAcks(bad); err == nil {
			t.Errorf("parseAcks(%q) accepted", bad)
		}
	}
	if acks, err := parseAcks(""); err != nil || len(acks) != 0 {
		t.Fatalf("empty acks: %v, %v", acks, err)
	}
}

func TestFormatPct(t *testing.T) {
	if got := formatPct(12.34); got != "+12.3%" {
		t.Errorf("formatPct = %q", got)
	}
	if got := formatPct(math.Inf(1)); got != "from zero baseline" {
		t.Errorf("formatPct(+Inf) = %q", got)
	}
}
