// Trend mode: E-Divisive change-point analysis over an ordered trajectory
// of benchmark snapshots (BENCH_*.json), the continuous-regression layer on
// top of the pairwise gate. Where `-baseline` diffs two snapshots, `-trend`
// ingests the whole committed history, localizes statistically significant
// level shifts per (benchmark, metric) series, ranks them, and exits
// non-zero on unacknowledged regressions.
package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sharp/internal/changepoint"
	"sharp/internal/obs"
	"sharp/internal/textplot"
)

// trendOptions carries the trend-mode configuration.
type trendOptions struct {
	// Alpha, Permutations, MinSegment, Seed tune the detector.
	Alpha        float64
	Permutations int
	MinSegment   int
	Seed         uint64
	// Timings includes the machine-dependent timing columns (ns/op, B/op,
	// allocs/op) in the watched series. Off by default so CI runs only gate
	// the machine-independent metric columns.
	Timings bool
	// HigherBetter names metric columns where larger is better (their
	// drops are regressions); every other metric column is an exact
	// reproduction target whose significant shift in either direction is a
	// regression unless acknowledged.
	HigherBetter map[string]bool
	// Ack holds acknowledged change points ("bench/metric@index"): known,
	// accepted shifts that no longer fail the gate.
	Ack map[string]bool
	// Tracer receives detector and gate events (optional).
	Tracer obs.Tracer
}

// timingColumns are the machine-dependent series gated only under -trend-timings.
var timingColumns = []string{"ns/op", "B/op", "allocs/op"}

// trendSeries is one (benchmark, metric) trajectory across the snapshots.
type trendSeries struct {
	Bench, Metric string
	Values        []float64
	Indices       []int // snapshot index of each value (series may have gaps)
	Timing        bool
	HigherBetter  bool
}

// trendFinding is one detected change point, classified.
type trendFinding struct {
	Series        trendSeries
	SnapshotIndex int // index into the snapshot trajectory
	Before, After float64
	MagnitudePct  float64
	P, Q          float64
	Regression    bool
	Acked         bool
	Direction     string // "regression", "improvement", "drift"
}

// ackToken is the identifier users pass to -ack to accept a change point.
func (f trendFinding) ackToken() string {
	return fmt.Sprintf("%s/%s@%d", f.Series.Bench, f.Series.Metric, f.SnapshotIndex)
}

// buildTrendSeries assembles every watched (benchmark, metric) series from
// the snapshot trajectory. Series order is deterministic (benchmark name,
// then metric name).
func buildTrendSeries(snaps []*Snapshot, o trendOptions) []trendSeries {
	type key struct{ bench, metric string }
	values := map[key][]float64{}
	indices := map[key][]int{}
	timing := map[key]bool{}
	add := func(k key, idx int, v float64, isTiming bool) {
		values[k] = append(values[k], v)
		indices[k] = append(indices[k], idx)
		timing[k] = isTiming
	}
	for idx, s := range snaps {
		for _, b := range s.Benchmarks {
			for metric, v := range b.Metrics {
				add(key{b.Name, metric}, idx, v, false)
			}
			if !o.Timings {
				continue
			}
			for col, v := range map[string]float64{
				"ns/op": b.NsPerOp, "B/op": b.BytesPerOp, "allocs/op": b.AllocsPerOp,
			} {
				if v != 0 {
					add(key{b.Name, col}, idx, v, true)
				}
			}
		}
	}
	keys := make([]key, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		return keys[i].metric < keys[j].metric
	})
	out := make([]trendSeries, 0, len(keys))
	for _, k := range keys {
		out = append(out, trendSeries{
			Bench: k.bench, Metric: k.metric,
			Values: values[k], Indices: indices[k],
			Timing:       timing[k],
			HigherBetter: o.HigherBetter[k.metric],
		})
	}
	return out
}

// classify turns the change points of one series into findings: direction,
// magnitude, and whether the shift is a regression for this series kind.
func classify(s trendSeries, cps []changepoint.ChangePoint, o trendOptions) []trendFinding {
	segs := changepoint.Segments(len(s.Values), cps)
	var out []trendFinding
	for i, cp := range cps {
		before := mean(s.Values[segs[i][0]:segs[i][1]])
		after := mean(s.Values[segs[i+1][0]:segs[i+1][1]])
		f := trendFinding{
			Series:        s,
			SnapshotIndex: s.Indices[cp.Index],
			Before:        before, After: after,
			P: cp.P, Q: cp.Q,
		}
		if before != 0 {
			f.MagnitudePct = 100 * (after - before) / math.Abs(before)
		} else {
			f.MagnitudePct = math.Inf(1)
			if after < before {
				f.MagnitudePct = math.Inf(-1)
			}
		}
		worse := after > before // timing semantics: up is bad
		switch {
		case s.HigherBetter:
			worse = after < before
		case !s.Timing:
			// Exact reproduction target: any significant shift is drift.
			worse = true
		}
		if worse {
			f.Direction = "regression"
			if !s.Timing && !s.HigherBetter {
				f.Direction = "drift"
			}
			f.Regression = true
			f.Acked = o.Ack[f.ackToken()]
		} else {
			f.Direction = "improvement"
		}
		out = append(out, f)
	}
	return out
}

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// runTrend analyzes the snapshot trajectory and writes the ranked report.
// It returns the number of unacknowledged regressions (the gate fails when
// positive).
func runTrend(paths []string, snaps []*Snapshot, o trendOptions, w io.Writer) int {
	series := buildTrendSeries(snaps, o)
	minPoints := 2 * o.MinSegment
	if o.MinSegment == 0 {
		minPoints = 4 // detector default MinSegment=2
	}
	var findings []trendFinding
	checked, short := 0, 0
	for _, s := range series {
		if len(s.Values) < minPoints {
			short++
			continue
		}
		checked++
		cps := changepoint.Detect(s.Values, changepoint.Options{
			Alpha: o.Alpha, Permutations: o.Permutations,
			MinSegment: o.MinSegment, Seed: o.Seed, Tracer: o.Tracer,
		})
		findings = append(findings, classify(s, cps, o)...)
	}
	// Rank: regressions first, then by p ascending, |magnitude| descending.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		ra, rb := a.Regression && !a.Acked, b.Regression && !b.Acked
		if ra != rb {
			return ra
		}
		if a.P != b.P {
			return a.P < b.P
		}
		ma, mb := math.Abs(a.MagnitudePct), math.Abs(b.MagnitudePct)
		if ma != mb {
			return ma > mb
		}
		return a.ackToken() < b.ackToken()
	})
	fmt.Fprintf(w, "trend: %d snapshots (%s .. %s), %d series checked, %d too short (< %d points)\n",
		len(snaps), filepath.Base(paths[0]), filepath.Base(paths[len(paths)-1]), checked, short, minPoints)
	failures := 0
	for _, f := range findings {
		status := strings.ToUpper(f.Direction)
		switch {
		case f.Acked:
			status = "ACKED " + f.Direction
		case f.Regression:
			failures++
		}
		at := f.SnapshotIndex
		fmt.Fprintf(w, "%-11s %s %s @ %s: %s -> %s (%s, p=%.3g, Q=%.3g)  %s\n",
			status+":", f.Series.Bench, f.Series.Metric, filepath.Base(paths[at]),
			formatValue(f.Before), formatValue(f.After), formatPct(f.MagnitudePct),
			f.P, f.Q, textplot.Sparkline(f.Series.Values))
		if f.Regression && !f.Acked {
			fmt.Fprintf(w, "             acknowledge with -ack '%s'\n", f.ackToken())
		}
		obs.Emit(o.Tracer, obs.EventTrendChangePoint, map[string]any{
			"series": f.Series.Bench + "/" + f.Series.Metric, "index": f.SnapshotIndex,
			"direction": f.Direction, "before": f.Before, "after": f.After,
			"magnitude_pct": finiteOr(f.MagnitudePct, 0), "p": f.P, "q": f.Q,
		})
	}
	if len(findings) == 0 {
		fmt.Fprintf(w, "ok: no significant change points\n")
	}
	obs.Emit(o.Tracer, obs.EventTrendGate, map[string]any{
		"series_checked": checked, "change_points": len(findings),
		"regressions": failures, "failed": failures > 0,
	})
	return failures
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', 5, 64) }

func formatPct(v float64) string {
	if math.IsInf(v, 0) {
		return "from zero baseline"
	}
	return fmt.Sprintf("%+.1f%%", v)
}

// finiteOr replaces non-finite values for JSON-safe event fields.
func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fallback
	}
	return v
}

// parseAcks parses the -ack flag: comma-separated "bench/metric@index" tokens.
func parseAcks(s string) (map[string]bool, error) {
	out := map[string]bool{}
	if s == "" {
		return out, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		at := strings.LastIndex(tok, "@")
		if at <= 0 || !strings.Contains(tok[:at], "/") {
			return nil, fmt.Errorf("bad -ack token %q (want bench/metric@index)", tok)
		}
		if _, err := strconv.Atoi(tok[at+1:]); err != nil {
			return nil, fmt.Errorf("bad -ack token %q: index %q not a number", tok, tok[at+1:])
		}
		out[tok] = true
	}
	return out, nil
}

// parseAckFile merges the -ack flag tokens with the acknowledgment file: one
// bench/metric@index token per line, blank lines and #-comments (full-line or
// trailing) ignored. A missing file is not an error — a repo without
// acknowledged shifts simply has no acks.txt yet — but an unreadable or
// malformed one is, so a typo cannot silently unacknowledge history.
func parseAckFile(ack, path string) (map[string]bool, error) {
	out, err := parseAcks(ack)
	if err != nil || path == "" {
		return out, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return nil, fmt.Errorf("reading -ack-file: %w", err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if h := strings.Index(line, "#"); h >= 0 {
			line = line[:h]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		more, err := parseAcks(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, i+1, err)
		}
		for k := range more {
			out[k] = true
		}
	}
	return out, nil
}

// splitList splits a comma-separated flag value into a set.
func splitList(s string) map[string]bool {
	out := map[string]bool{}
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out[tok] = true
		}
	}
	return out
}
