// Command sharp-benchdiff parses `go test -bench` output and either
// snapshots it into the repo's benchmark-JSON schema (BENCH_baseline.json,
// BENCH_pr4.json) or gates it against a baseline snapshot.
//
// Snapshot mode:
//
//	go test -bench . -benchmem ./... | sharp-benchdiff -snapshot BENCH_pr4.json -description "..."
//
// Gate mode (CI): compare the deterministic ReportMetric columns — the
// reproduction targets, which must not drift no matter how the code is
// optimized — and exit non-zero on any mismatch:
//
//	sharp-benchdiff -in bench_current.txt -baseline BENCH_baseline.json -metrics 'multimodal_%,savings_%'
//
// Floor metrics (-min 'speedup_x') gate one-sided: the current value must
// meet or beat the baseline, for performance ratios that must not regress.
//
// Benchmarks present in the current run but absent from the baseline carry
// gated metric columns nobody is guarding: they are reported as warnings,
// and -strict turns them into failures.
//
// Timings (ns/op, B/op, allocs/op) are machine-dependent and never gated
// pairwise.
//
// Trend mode (continuous regression detection) ingests the whole snapshot
// trajectory instead of one pair and localizes statistically significant
// level shifts per (benchmark, metric) series via E-Divisive change-point
// analysis (internal/changepoint), exiting non-zero on unacknowledged
// regressions:
//
//	sharp-benchdiff -trend 'BENCH_*.json'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"sharp/internal/fsx"
	"sharp/internal/obs"
)

// Snapshot is the on-disk schema shared with BENCH_baseline.json.
type Snapshot struct {
	Description string             `json:"description"`
	Environment map[string]string  `json:"environment"`
	Benchmarks  []*BenchmarkResult `json:"benchmarks"`
}

// BenchmarkResult is one benchmark line.
type BenchmarkResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// procSuffix strips the -<GOMAXPROCS> suffix go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` text: header lines (goos/goarch/pkg/cpu)
// and benchmark result lines of (value, unit) pairs.
func parseBench(r io.Reader) (env map[string]string, results []*BenchmarkResult, err error) {
	env = map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				if _, seen := env[key]; !seen { // keep the first package header
					env[key] = v
				}
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		b := &BenchmarkResult{
			Name:       procSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("parse %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "MB/s":
				// throughput is machine-dependent; skip
			default:
				b.Metrics[unit] = v
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		results = append(results, b)
	}
	return env, results, sc.Err()
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// gate compares the named deterministic metric columns of current against
// the baseline and returns the list of violations plus warnings. Columns in
// metrics must match the baseline exactly (within tol); columns in
// minMetrics are floors — the baseline value is a minimum the current run
// must meet or beat, for performance-ratio metrics that only ever get
// noisier upward.
//
// Warnings cover the reverse direction the violation scan cannot see: a
// benchmark (or gated column) present in the current run but absent from
// the baseline — a new code path or renamed benchmark nobody is guarding.
// -strict promotes warnings to violations.
func gate(baseline *Snapshot, current []*BenchmarkResult, metrics, minMetrics []string, tol float64) (violations, warnings []string) {
	byName := map[string]*BenchmarkResult{}
	for _, b := range current {
		byName[b.Name] = b
	}
	want := map[string]bool{}
	for _, m := range metrics {
		want[strings.TrimSpace(m)] = true
	}
	floor := map[string]bool{}
	for _, m := range minMetrics {
		floor[strings.TrimSpace(m)] = true
	}
	baseByName := map[string]*BenchmarkResult{}
	for _, b := range baseline.Benchmarks {
		baseByName[b.Name] = b
	}
	for _, base := range baseline.Benchmarks {
		for metric, bv := range base.Metrics {
			if !want[metric] && !floor[metric] {
				continue
			}
			cur, ok := byName[base.Name]
			if !ok {
				violations = append(violations,
					fmt.Sprintf("%s: benchmark missing from current run (baseline %s=%g)", base.Name, metric, bv))
				continue
			}
			cv, ok := cur.Metrics[metric]
			if !ok {
				violations = append(violations,
					fmt.Sprintf("%s: metric %s missing from current run (baseline %g)", base.Name, metric, bv))
				continue
			}
			switch {
			case floor[metric]:
				if cv < bv {
					violations = append(violations,
						fmt.Sprintf("%s: %s below floor: baseline %g, current %g", base.Name, metric, bv, cv))
				}
			case !withinTol(bv, cv, tol):
				violations = append(violations,
					fmt.Sprintf("%s: %s drifted: baseline %g, current %g", base.Name, metric, bv, cv))
			}
		}
	}
	// Unguarded novelty: current benchmarks carrying gated columns the
	// baseline does not know about.
	for _, cur := range current {
		base := baseByName[cur.Name]
		for metric, cv := range cur.Metrics {
			if !want[metric] && !floor[metric] {
				continue
			}
			switch {
			case base == nil:
				warnings = append(warnings,
					fmt.Sprintf("%s: benchmark not in baseline (unguarded %s=%g); re-snapshot to gate it", cur.Name, metric, cv))
			default:
				if _, ok := base.Metrics[metric]; !ok {
					warnings = append(warnings,
						fmt.Sprintf("%s: metric %s not in baseline (unguarded, current %g); re-snapshot to gate it", cur.Name, metric, cv))
				}
			}
		}
	}
	sort.Strings(warnings)
	return violations, warnings
}

// withinTol reports |a-b| <= tol * max(1, |a|, |b|): relative for large
// values, absolute near zero, and symmetric — comparing (a, b) must reach
// the same verdict as comparing (b, a), so the gate tolerates the same
// drift whichever side is the baseline.
func withinTol(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func main() {
	in := flag.String("in", "-", "bench output file (- for stdin)")
	snapshot := flag.String("snapshot", "", "write a snapshot JSON to this path")
	description := flag.String("description", "", "snapshot description")
	baseline := flag.String("baseline", "", "baseline snapshot JSON to gate against")
	metrics := flag.String("metrics", "multimodal_%,savings_%", "comma-separated deterministic metric columns to gate")
	min := flag.String("min", "", "comma-separated metric columns gated as floors (current >= baseline)")
	tol := flag.Float64("tol", 1e-6, "relative drift tolerance")
	strict := flag.Bool("strict", false, "fail on warnings (benchmarks/columns unguarded by the baseline)")
	trend := flag.String("trend", "", "glob of snapshot JSONs (lexical order) for change-point trend analysis")
	trendTimings := flag.Bool("trend-timings", false, "trend mode: also watch machine-dependent ns/op, B/op, allocs/op series")
	higherBetter := flag.String("higher-better", "speedup_x,rows/s", "trend mode: metric columns where larger is better")
	ack := flag.String("ack", "", "trend mode: acknowledged change points (bench/metric@index, comma-separated)")
	ackFile := flag.String("ack-file", "", "trend mode: file of acknowledged change points, one bench/metric@index per line (# comments); merged with -ack, missing file = no acks")
	alpha := flag.Float64("alpha", 0.05, "trend mode: permutation-test significance level")
	perms := flag.Int("perms", 199, "trend mode: permutations per segment test")
	minSegment := flag.Int("min-segment", 2, "trend mode: minimum snapshots per segment")
	seed := flag.Uint64("seed", 1, "trend mode: permutation RNG seed")
	trace := flag.String("trace", "", "trend mode: write detector events as JSONL to this path")
	flag.Parse()

	if *trend != "" {
		os.Exit(trendMain(*trend, *trendTimings, *higherBetter, *ack, *ackFile, *alpha, *perms, *minSegment, *seed, *trace))
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	env, results, err := parseBench(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "sharp-benchdiff: no benchmark lines found in input")
		os.Exit(2)
	}

	if *snapshot != "" {
		s := Snapshot{Description: *description, Environment: env, Benchmarks: results}
		data, err := json.MarshalIndent(&s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Atomic: a crash mid-snapshot must not tear the repo's baseline.
		if err := fsx.WriteFile(*snapshot, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *snapshot, len(results))
	}

	if *baseline != "" {
		base, err := loadSnapshot(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cols := strings.Split(*metrics, ",")
		var minCols []string
		if *min != "" {
			minCols = strings.Split(*min, ",")
		}
		violations, warnings := gate(base, results, cols, minCols, *tol)
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "WARN: "+w)
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "DRIFT: "+v)
		}
		if len(violations) > 0 || (*strict && len(warnings) > 0) {
			os.Exit(1)
		}
		fmt.Printf("ok: %s columns match %s\n", *metrics, *baseline)
	}
}

// trendMain runs trend mode end to end and returns the process exit code.
func trendMain(pattern string, timings bool, higherBetter, ack, ackFile string, alpha float64, perms, minSegment int, seed uint64, trace string) int {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sharp-benchdiff: bad -trend pattern:", err)
		return 2
	}
	sort.Strings(paths)
	if len(paths) < 2 {
		fmt.Fprintf(os.Stderr, "sharp-benchdiff: -trend %q matched %d snapshots, need at least 2\n", pattern, len(paths))
		return 2
	}
	snaps := make([]*Snapshot, len(paths))
	for i, p := range paths {
		if snaps[i], err = loadSnapshot(p); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	acks, err := parseAckFile(ack, ackFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sharp-benchdiff:", err)
		return 2
	}
	o := trendOptions{
		Alpha: alpha, Permutations: perms, MinSegment: minSegment, Seed: seed,
		Timings: timings, HigherBetter: splitList(higherBetter), Ack: acks,
	}
	if trace != "" {
		f, err := os.Create(trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		t := obs.NewJSONL(f)
		defer obs.Close(t)
		o.Tracer = t
	}
	if failures := runTrend(paths, snaps, o, os.Stdout); failures > 0 {
		fmt.Fprintf(os.Stderr, "sharp-benchdiff: %d unacknowledged regression(s) in trend\n", failures)
		return 1
	}
	return 0
}
