package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: sharp/internal/stats
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig4Distributions-8   	       1	58640588 ns/op	 3408856 B/op	    1477 allocs/op	      70.0 multimodal_%
BenchmarkFig1bAutoStopping-8   	       1	52675136 ns/op	 8436464 B/op	   99960 allocs/op	   0.06561 KS_to_truth	     87.22 savings_%
PASS
ok  	sharp	1.2s
`

func TestParseBench(t *testing.T) {
	env, results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if env["goos"] != "linux" || env["pkg"] != "sharp/internal/stats" {
		t.Fatalf("env = %v", env)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	fig4 := results[0]
	if fig4.Name != "BenchmarkFig4Distributions" {
		t.Fatalf("proc suffix not stripped: %q", fig4.Name)
	}
	if fig4.NsPerOp != 58640588 || fig4.AllocsPerOp != 1477 {
		t.Fatalf("timings misparsed: %+v", fig4)
	}
	if fig4.Metrics["multimodal_%"] != 70.0 {
		t.Fatalf("metrics misparsed: %+v", fig4.Metrics)
	}
	if results[1].Metrics["savings_%"] != 87.22 {
		t.Fatalf("metrics misparsed: %+v", results[1].Metrics)
	}
}

func TestGate(t *testing.T) {
	_, results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	base := &Snapshot{Benchmarks: []*BenchmarkResult{
		{Name: "BenchmarkFig4Distributions", Metrics: map[string]float64{"multimodal_%": 70.0}},
		{Name: "BenchmarkFig1bAutoStopping", Metrics: map[string]float64{"savings_%": 87.22, "KS_to_truth": 0.06561}},
	}}
	cols := []string{"multimodal_%", "savings_%"}
	if v, _ := gate(base, results, cols, nil, 1e-6); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Drift in a gated column fails.
	base.Benchmarks[0].Metrics["multimodal_%"] = 65.0
	if v, _ := gate(base, results, cols, nil, 1e-6); len(v) != 1 {
		t.Fatalf("expected 1 violation, got %v", v)
	}
	// Drift in a non-gated column (timing-adjacent metric) passes.
	base.Benchmarks[0].Metrics["multimodal_%"] = 70.0
	base.Benchmarks[1].Metrics["KS_to_truth"] = 0.9
	if v, _ := gate(base, results, cols, nil, 1e-6); len(v) != 0 {
		t.Fatalf("non-gated column should not fail: %v", v)
	}
	// Missing benchmark fails.
	base.Benchmarks = append(base.Benchmarks,
		&BenchmarkResult{Name: "BenchmarkGone", Metrics: map[string]float64{"savings_%": 1}})
	if v, _ := gate(base, results, cols, nil, 1e-6); len(v) != 1 {
		t.Fatalf("expected missing-benchmark violation, got %v", v)
	}
}

func TestGateFloor(t *testing.T) {
	_, results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	base := &Snapshot{Benchmarks: []*BenchmarkResult{
		{Name: "BenchmarkFig1bAutoStopping", Metrics: map[string]float64{"savings_%": 80}},
	}}
	// Current 87.22 beats the 80 floor.
	if v, _ := gate(base, results, nil, []string{"savings_%"}, 1e-6); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Raise the floor above the current value: one-sided failure.
	base.Benchmarks[0].Metrics["savings_%"] = 90
	if v, _ := gate(base, results, nil, []string{"savings_%"}, 1e-6); len(v) != 1 || !strings.Contains(v[0], "below floor") {
		t.Fatalf("expected floor violation, got %v", v)
	}
	// The same column as an exact gate would fail in both directions.
	base.Benchmarks[0].Metrics["savings_%"] = 80
	if v, _ := gate(base, results, []string{"savings_%"}, nil, 1e-6); len(v) != 1 {
		t.Fatalf("exact gate should reject 80 vs 87.22: %v", v)
	}
}
