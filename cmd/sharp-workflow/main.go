// Command sharp-workflow translates Serverless Workflow documents (JSON or
// the YAML subset) into Makefiles whose targets invoke the sharp launcher —
// the paper's workflow path (§IV-b) — or executes them natively against the
// simulated testbed.
//
// Usage:
//
//	sharp-workflow translate pipeline.yaml > Makefile
//	sharp-workflow run pipeline.yaml --machine machine1 --runs 50
//	sharp-workflow graph pipeline.yaml
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"sharp/internal/backend"
	"sharp/internal/core"
	"sharp/internal/machine"
	"sharp/internal/stopping"
	"sharp/internal/workflow"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sharp-workflow:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		fmt.Println(`sharp-workflow — Serverless Workflow execution for SHARP

Commands:
  translate <file>   emit a Makefile invoking the sharp launcher
  run <file>         execute the workflow natively on the simulated testbed
  graph <file>       print the dependency levels`)
		return nil
	}
	switch args[0] {
	case "translate":
		return cmdTranslate(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "graph":
		return cmdGraph(args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func cmdTranslate(args []string) error {
	fs := flag.NewFlagSet("translate", flag.ExitOnError)
	launcher := fs.String("launcher", "sharp", "launcher command for Makefile recipes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sharp-workflow translate <workflow.(json|yaml)>")
	}
	w, err := workflow.ParseFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(w.Makefile(*launcher))
	return nil
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sharp-workflow graph <workflow.(json|yaml)>")
	}
	w, err := workflow.ParseFile(fs.Arg(0))
	if err != nil {
		return err
	}
	levels, err := w.Levels()
	if err != nil {
		return err
	}
	fmt.Printf("workflow %q: %d tasks in %d levels\n", w.Name, len(w.Tasks), len(levels))
	for i, level := range levels {
		fmt.Printf("  level %d: %s\n", i, strings.Join(level, ", "))
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	machineName := fs.String("machine", "machine1", "simulated machine")
	runs := fs.Int("runs", 50, "fixed runs per workload action")
	seed := fs.Uint64("seed", 42, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sharp-workflow run <workflow.(json|yaml)>")
	}
	w, err := workflow.ParseFile(fs.Arg(0))
	if err != nil {
		return err
	}
	m, err := machine.ByName(*machineName)
	if err != nil {
		return err
	}
	launcher := core.NewLauncher()
	err = w.Execute(context.Background(), func(ctx context.Context, task string, act workflow.Action) error {
		res, err := launcher.Run(ctx, core.Experiment{
			Name:     task + "/" + act.Function,
			Workload: act.Function,
			Backend:  backend.NewSim(m, *seed),
			Rule:     stopping.NewFixed(*runs),
			Day:      1,
			Seed:     *seed,
		})
		if err != nil {
			return err
		}
		sum, _ := res.Summary()
		fmt.Printf("[%s] %s: n=%d mean=%.4gs median=%.4gs modes=%d\n",
			task, act.Function, sum.N, sum.Mean, sum.Median, res.Modes())
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("workflow %q complete\n", w.Name)
	return nil
}
