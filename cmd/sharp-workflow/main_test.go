package main

import (
	"os"
	"path/filepath"
	"testing"
)

func pipelinePath(t *testing.T) string {
	t.Helper()
	path, err := filepath.Abs("../../examples/workflow/pipeline.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTranslate(t *testing.T) {
	if err := run([]string{"translate", pipelinePath(t)}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"translate"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"translate", "/nonexistent.yaml"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
}

func TestGraph(t *testing.T) {
	if err := run([]string{"graph", pipelinePath(t)}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"graph"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestNativeRun(t *testing.T) {
	if err := run([]string{"run", "--runs", "10", pipelinePath(t)}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "--machine", "ghost", pipelinePath(t)}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestUsageAndUnknownCommand(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestBadWorkflowFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.yaml")
	os.WriteFile(bad, []byte("states:\n  - name: a\n    transition: ghost\n"), 0o644)
	if err := run([]string{"graph", bad}); err == nil {
		t.Fatal("invalid workflow accepted")
	}
}
