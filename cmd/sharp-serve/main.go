// Command sharp-serve runs SHARP's fault-tolerant campaign coordinator: an
// HTTP service that accepts campaign submissions from multiple tenants,
// shards their measured runs across leased workers, and survives worker
// death, admission pressure, and its own restarts with byte-identical
// result CSVs (see internal/service and DESIGN.md §11).
//
//	sharp-serve -addr :8099 -data ./campaigns -workers 4
//
// SIGINT/SIGTERM triggers a graceful drain: no new campaigns or leases,
// in-flight batches land, remaining campaigns checkpoint; restarting
// sharp-serve over the same -data directory resumes them bit-identically.
//
// The SHARP_CLOCK environment variable (RFC3339 or Unix seconds) freezes
// row timestamps, making service CSVs reproducible across restarts — the
// e2e crash tests depend on it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"sharp/internal/obs"
	"sharp/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sharp-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("sharp-serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8099", "HTTP listen address")
	data := fs.String("data", "sharp-campaigns", "journal directory (specs, row logs, metadata)")
	workers := fs.Int("workers", 2, "in-process workers to start (0 = external workers only)")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "lease lifetime without a heartbeat")
	batch := fs.Int("batch", 4, "max runs per lease")
	maxRunning := fs.Int("max-running", 4, "campaigns executing concurrently")
	maxTenant := fs.Int("max-tenant", 4, "active campaigns allowed per tenant")
	drainGrace := fs.Duration("drain-grace", 5*time.Second, "how long drain waits for in-flight leases")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory (repeat submissions replay with zero dispatches)")
	budgetAware := fs.Bool("budget-aware", false, "lease the queued campaign furthest from convergence instead of FIFO (results identical either way)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	cfg := service.Config{
		DataDir:      *data,
		Clock:        clockFromEnv(),
		LeaseTTL:     *leaseTTL,
		BatchSize:    *batch,
		MaxRunning:   *maxRunning,
		MaxPerTenant: *maxTenant,
		DrainGrace:   *drainGrace,
		Tracer:       obs.NewMetricsSink(reg),
		Registry:     reg,
		CacheDir:     *cacheDir,
		BudgetAware:  *budgetAware,
	}
	coord, err := service.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for i := 0; i < *workers; i++ {
		w := &service.Worker{ID: fmt.Sprintf("w%d", i+1), API: coord, Poll: 50 * time.Millisecond}
		go w.Run(ctx)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.Handler(coord)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	fmt.Fprintf(os.Stderr, "sharp-serve: listening on %s, journal in %s\n", lis.Addr(), *data)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "sharp-serve: draining...")
		if err := coord.Drain(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "sharp-serve: drain:", err)
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		fmt.Fprintln(os.Stderr, "sharp-serve: drained; restart with the same -data to resume")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// clockFromEnv honors SHARP_CLOCK (RFC3339 or Unix seconds): a frozen row
// clock makes CSVs byte-comparable across service restarts.
func clockFromEnv() func() time.Time {
	v := os.Getenv("SHARP_CLOCK")
	if v == "" {
		return nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return func() time.Time { return t }
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		t := time.Unix(secs, 0).UTC()
		return func() time.Time { return t }
	}
	fmt.Fprintf(os.Stderr, "sharp-serve: ignoring unparseable SHARP_CLOCK %q\n", v)
	return nil
}
