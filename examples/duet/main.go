// Duet benchmarking (related work §VII, Bulej et al.): compare two
// workloads by running them in interleaved pairs so platform interference
// affects both sides of each pair equally, then analyze the paired ratios
// with the Wilcoxon signed-rank test.
//
// The demo compares needle vs backprop twice: once as a plain unpaired
// comparison and once as a duet, showing the duet's tighter ratio interval.
//
//	go run ./examples/duet
package main

import (
	"context"
	"fmt"
	"log"

	"sharp/internal/backend"
	"sharp/internal/core"
	"sharp/internal/duet"
	"sharp/internal/machine"
	"sharp/internal/stopping"
)

func main() {
	m1, err := machine.ByName("machine1")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Unpaired: two independent campaigns, compared after the fact.
	launcher := core.NewLauncher()
	measure := func(workload string) *core.Result {
		res, err := launcher.Run(ctx, core.Experiment{
			Name:     workload,
			Workload: workload,
			Backend:  backend.NewSim(m1, 7),
			Rule:     stopping.NewFixed(100),
			Day:      1,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	ra := measure("needle")
	rb := measure("backprop")
	cmp, err := core.CompareResults(ra, rb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("# Unpaired comparison (two independent 100-run campaigns)")
	fmt.Printf("mean ratio needle/backprop: %.4f (Mann-Whitney p=%.3g)\n\n",
		cmp.MeanA/cmp.MeanB, cmp.MannWhitney.PValue)

	// Duet: interleaved pairs with a dynamic CI stopping rule on the ratio.
	res, err := duet.Run(ctx, backend.NewSim(m1, 7), duet.Config{
		WorkloadA:      "needle",
		WorkloadB:      "backprop",
		Seed:           7,
		Day:            1,
		MaxPairs:       200,
		AlternateOrder: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("# Duet comparison (interleaved pairs, paired analysis)")
	fmt.Print(res.Render())
	fmt.Printf("\nThe duet needed only %d pairs because the paired design cancels\n", res.Pairs)
	fmt.Println("shared interference; the ratio CI quantifies the speedup directly.")
}
