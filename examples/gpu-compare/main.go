// GPU comparison (paper §VI-B, Figs. 8-9): which accelerator — A100 or
// H100 — is better for a given application, and by how much?
//
// SHARP's answer is a distribution comparison, not a single speedup number:
// means, KS distance, modality, and overlap, for every CUDA benchmark in
// the Rodinia suite.
//
//	go run ./examples/gpu-compare
package main

import (
	"context"
	"fmt"
	"log"

	"sharp/internal/backend"
	"sharp/internal/core"
	"sharp/internal/machine"
	"sharp/internal/report"
	"sharp/internal/rodinia"
	"sharp/internal/stopping"
	"sharp/internal/textplot"
)

func main() {
	a100, err := machine.ByName("machine1") // Nvidia A100X 80GB
	if err != nil {
		log.Fatal(err)
	}
	h100, err := machine.ByName("machine3") // Nvidia H100 80GB
	if err != nil {
		log.Fatal(err)
	}
	launcher := core.NewLauncher()
	measure := func(bench string, m *machine.Machine) *core.Result {
		res, err := launcher.Run(context.Background(), core.Experiment{
			Name:     bench + "@" + m.GPU.Model,
			Workload: bench,
			Backend:  backend.NewSim(m, 7),
			Rule:     stopping.NewKS(0.1, stopping.Bounds{MaxSamples: 1000}),
			Day:      1,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	var rows [][]string
	for _, bench := range rodinia.CUDA() {
		ra := measure(bench.Name, a100)
		rh := measure(bench.Name, h100)
		cmp, err := core.CompareResults(ra, rh)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			bench.Name,
			fmt.Sprintf("%.3fs", cmp.MeanA),
			fmt.Sprintf("%.3fs", cmp.MeanB),
			fmt.Sprintf("%.2fx", cmp.Speedup),
			fmt.Sprintf("%d / %d", cmp.ModesA, cmp.ModesB),
			fmt.Sprintf("%d / %d", ra.Runs, rh.Runs),
		})
		// Print the detailed distribution comparison for the two benchmarks
		// the paper highlights.
		if bench.Name == "bfs-CUDA" || bench.Name == "srad-CUDA" {
			fmt.Print(report.Comparison(cmp, ra.Samples, rh.Samples, report.Options{}))
			fmt.Println()
		}
	}
	fmt.Println("# H100 vs A100 across the CUDA suite")
	fmt.Println()
	fmt.Print(textplot.Table(
		[]string{"benchmark", "A100 mean", "H100 mean", "speedup", "modes A/H", "runs A/H"}, rows))
	fmt.Println("\nThe H100 is consistently faster, but the speedup is application-")
	fmt.Println("specific (1.2x to 2x) — the basis for cost-aware hardware selection.")
}
