// Concurrency study (paper §VI-C, Table V): how does increased
// parallelization affect the throughput of a request-response workload?
//
// The stream cluster (sc) benchmark runs at concurrency 1..16 on Machine 3;
// SHARP logs every concurrent instance in its own tidy-data row and reports
// both total time and time per concurrency unit.
//
//	go run ./examples/concurrency
package main

import (
	"fmt"
	"log"

	"sharp/internal/machine"
	"sharp/internal/perfmodel"
	"sharp/internal/record"
	"sharp/internal/stats"
	"sharp/internal/textplot"
	"time"
)

func main() {
	m3, err := machine.ByName("machine3")
	if err != nil {
		log.Fatal(err)
	}
	const runs = 100
	var rows [][]string
	var logRows []record.Row
	base := 0.0
	for _, c := range []int{1, 2, 4, 8, 16} {
		g, err := perfmodel.ConcurrencySampler(m3, c, 11)
		if err != nil {
			log.Fatal(err)
		}
		samples := make([]float64, runs)
		for run := 0; run < runs; run++ {
			v := g.Next()
			samples[run] = v
			// One row per concurrent instance (§IV-d tidy logging).
			for inst, t := range g.PerInstanceTimes(v) {
				logRows = append(logRows, record.Row{
					Timestamp: time.Now().UTC(), Experiment: "concurrency",
					Workload: "sc", Backend: "sim", Machine: m3.Name,
					Run: run + 1, Instance: inst + 1,
					Metric: "exec_time", Value: t, Unit: "seconds",
				})
			}
		}
		avg := stats.Mean(samples)
		if c == 1 {
			base = avg
		}
		ci := stats.MeanCI(samples, 0.95)
		rows = append(rows, []string{
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%.2f", avg),
			fmt.Sprintf("[%.2f, %.2f]", ci.Low, ci.High),
			fmt.Sprintf("%.2f", avg/float64(c)),
			fmt.Sprintf("%.0f%%", 100*(avg-base)/base),
		})
	}
	fmt.Println("# Effect of concurrency on sc (Machine 3)")
	fmt.Println()
	fmt.Print(textplot.Table(
		[]string{"concurrency", "avg time (s)", "95% CI", "per-unit (s)", "runtime vs c=1"}, rows))
	fmt.Printf("\n%d instance rows logged (one per concurrent instance per run).\n", len(logRows))
	fmt.Println("Per-unit time falls as concurrency rises: the system scales well,")
	fmt.Println("so users can provision concurrency to meet a QoS envelope.")
}
