// Workflow execution (paper §IV-b): parse a Serverless Workflow document,
// print its dependency structure and Makefile translation, then execute it
// natively — each action measured by the SHARP launcher with auto-stopping.
//
//	go run ./examples/workflow
package main

import (
	"context"
	"fmt"
	"log"
	"path/filepath"
	"runtime"
	"strings"

	"sharp/internal/backend"
	"sharp/internal/core"
	"sharp/internal/machine"
	"sharp/internal/stopping"
	"sharp/internal/workflow"
)

func main() {
	// Locate pipeline.yaml relative to this source file so the example runs
	// from any working directory.
	_, self, _, _ := runtime.Caller(0)
	path := filepath.Join(filepath.Dir(self), "pipeline.yaml")

	w, err := workflow.ParseFile(path)
	if err != nil {
		log.Fatal(err)
	}
	levels, err := w.Levels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# Workflow %q\n\n", w.Name)
	for i, level := range levels {
		fmt.Printf("level %d: %s\n", i, strings.Join(level, ", "))
	}

	fmt.Println("\n## Makefile translation (the paper's 'make' path)")
	fmt.Println()
	fmt.Println(w.Makefile("sharp"))

	fmt.Println("## Native execution on the simulated testbed")
	fmt.Println()
	m1, err := machine.ByName("machine1")
	if err != nil {
		log.Fatal(err)
	}
	launcher := core.NewLauncher()
	err = w.Execute(context.Background(), func(ctx context.Context, task string, act workflow.Action) error {
		res, err := launcher.Run(ctx, core.Experiment{
			Name:     task + "/" + act.Function,
			Workload: act.Function,
			Backend:  backend.NewSim(m1, 42),
			Rule:     stopping.NewKS(0.1, stopping.Bounds{MaxSamples: 500}),
			Day:      1,
			Seed:     42,
		})
		if err != nil {
			return err
		}
		sum, _ := res.Summary()
		fmt.Printf("[%s] %s: %d runs, median %.3fs, %d mode(s) — %s\n",
			task, act.Function, res.Runs, sum.Median, res.Modes(), res.StopReason)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworkflow complete")
}
