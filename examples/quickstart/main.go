// Quickstart: measure one benchmark with SHARP's auto-stopping and print a
// full distribution report.
//
// This is the minimal SHARP loop: pick a workload and a backend, let the
// meta-heuristic stopping rule decide how many repetitions are enough, and
// get a distribution — not a point summary — plus a reproducible record.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sharp/internal/backend"
	"sharp/internal/core"
	"sharp/internal/machine"
	"sharp/internal/report"
)

func main() {
	// 1. Pick a (simulated) machine and a workload from the Rodinia suite.
	m, err := machine.ByName("machine1")
	if err != nil {
		log.Fatal(err)
	}
	exp := core.Experiment{
		Name:     "quickstart-hotspot",
		Workload: "hotspot",
		Backend:  backend.NewSim(m, 42),
		// Rule: nil -> the meta-heuristic classifies the distribution online
		// and applies the most appropriate stopping criterion.
		Day:  1,
		Seed: 42,
	}

	// 2. Run. The launcher repeats the workload until the stopping rule is
	// satisfied, logging every instance of every run.
	res, err := core.NewLauncher().Run(context.Background(), exp)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report the distribution.
	fmt.Print(report.Result(res, report.Options{}))

	// 4. Record everything: tidy CSV + metadata that can recreate this very
	// experiment ('sharp recreate quickstart-meta.md').
	dir := os.TempDir()
	csvPath := filepath.Join(dir, "quickstart-log.csv")
	metaPath := filepath.Join(dir, "quickstart-meta.md")
	if err := res.SaveCSV(csvPath); err != nil {
		log.Fatal(err)
	}
	if err := res.SaveMetadata(metaPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRecorded: %s and %s\n", csvPath, metaPath)
	fmt.Printf("Stopping: %s after %d runs (%s rule)\n", res.StopReason, res.Runs, res.RuleName)
}
