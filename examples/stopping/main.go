// Stopping rules on the synthetic tuning set (paper §IV-c): how many
// samples does each rule take to declare a distribution measured, and what
// does the meta-heuristic detect?
//
//	go run ./examples/stopping
package main

import (
	"fmt"

	"sharp/internal/classify"
	"sharp/internal/randx"
	"sharp/internal/similarity"
	"sharp/internal/stopping"
	"sharp/internal/textplot"
)

func main() {
	const seed = 99
	bounds := stopping.Bounds{MaxSamples: 5000}
	fresh := func(i int) randx.Sampler { return randx.TuningSet(randx.New(seed))[i] }

	var rows [][]string
	for i, s := range randx.TuningSet(randx.New(seed)) {
		name := s.Name()

		// What does the classifier say at 1000 samples?
		profile := classify.Classify(randx.SampleN(fresh(i), 1000))

		// Drive three rules over identical deterministic streams.
		meta := stopping.NewMeta(stopping.MetaConfig{Seed: seed}, bounds)
		metaSamples := stopping.Drive(fresh(i).Next, meta)

		ks := stopping.NewKS(0.1, bounds)
		ksSamples := stopping.Drive(fresh(i).Next, ks)

		ci := stopping.NewCI(0.95, 0.05, bounds)
		ciSamples := stopping.Drive(fresh(i).Next, ci)

		// How close is the meta-stopped sample to a 5000-run truth?
		truth := randx.SampleN(fresh(i), 5000)
		div := similarity.KS(metaSamples, truth)

		rows = append(rows, []string{
			name,
			string(profile.Class),
			fmt.Sprintf("%d", len(metaSamples)),
			fmt.Sprintf("%d", len(ksSamples)),
			fmt.Sprintf("%d", len(ciSamples)),
			fmt.Sprintf("%.3f", div),
		})
	}
	fmt.Println("# Stopping rules on the ten synthetic tuning distributions")
	fmt.Println()
	fmt.Print(textplot.Table(
		[]string{"distribution", "detected class", "meta runs", "ks runs", "ci runs", "meta KS-to-truth"},
		rows))
	fmt.Println("\nThe meta-heuristic adapts its criterion to the detected family;")
	fmt.Println("rules stop early on easy distributions and guard against hard ones")
	fmt.Println("(Cauchy has no mean: CI-style rules would never converge).")
}
