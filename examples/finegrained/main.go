// Fine-grained application analysis (paper §VI-A, Fig. 7): where do the
// modes in an application's execution time come from?
//
// The leukocyte tracking application reports per-phase metrics (detection,
// tracking) alongside total execution time. SHARP logs all of them per run;
// comparing the phase distributions localizes the bimodality to the
// tracking phase.
//
//	go run ./examples/finegrained
package main

import (
	"context"
	"fmt"
	"log"

	"sharp/internal/backend"
	"sharp/internal/core"
	"sharp/internal/machine"
	"sharp/internal/report"
	"sharp/internal/stats"
	"sharp/internal/stopping"
)

func main() {
	m1, err := machine.ByName("machine1")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.NewLauncher().Run(context.Background(), core.Experiment{
		Name:     "leukocyte-finegrained",
		Workload: "leukocyte",
		Backend:  backend.NewSim(m1, 3),
		Rule:     stopping.NewFixed(1000),
		Day:      1,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	total := res.Samples
	detection := res.MetricSamples("detection_time")
	tracking := res.MetricSamples("tracking_time")

	fmt.Println("# Leukocyte fine-grained analysis")
	fmt.Println()
	fmt.Printf("total:     %d mode(s)\n", stats.CountModes(total))
	fmt.Printf("detection: %d mode(s)\n", stats.CountModes(detection))
	fmt.Printf("tracking:  %d mode(s)\n", stats.CountModes(tracking))
	fmt.Println()
	fmt.Print(report.Distribution("exec_time (total)", total, report.Options{}))
	fmt.Print(report.Distribution("detection_time", detection, report.Options{}))
	fmt.Print(report.Distribution("tracking_time", tracking, report.Options{}))
	fmt.Println()
	fmt.Println("Insight: the dual modes of the total execution time are introduced")
	fmt.Println("by the tracking phase — optimization effort belongs there.")
}
