package sharp_test

// Benchmark harness: one testing.B target per paper table and figure (see
// DESIGN.md's per-experiment index), plus ablation benches for the design
// choices the framework makes. Each benchmark regenerates its experiment
// end-to-end and reports the headline quantity via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the paper's result series and
// their costs in one run.

import (
	"context"
	"fmt"
	"testing"

	"sharp/internal/backend"
	"sharp/internal/classify"
	"sharp/internal/core"
	"sharp/internal/experiments"
	"sharp/internal/machine"
	"sharp/internal/randx"
	"sharp/internal/similarity"
	"sharp/internal/stats"
	"sharp/internal/stats/stream"
	"sharp/internal/stopping"
	"sharp/internal/sweep"
)

const benchSeed = 2024

// BenchmarkFig1bAutoStopping regenerates Fig. 1b: computation saved by
// KS-rule auto-stopping vs a fixed 1000-run budget (paper: 89.8%).
func BenchmarkFig1bAutoStopping(b *testing.B) {
	var savings, divergence float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1b(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		savings = r.SavingsKS
		divergence = r.KSDivergence
	}
	b.ReportMetric(savings*100, "savings_%")
	b.ReportMetric(divergence, "KS_to_truth")
}

// BenchmarkTable2Suite regenerates Table II from the live suite definition.
func BenchmarkTable2Suite(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run("table2", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		n = len(rep.Render())
	}
	b.ReportMetric(float64(n), "render_bytes")
}

// BenchmarkFig4Distributions regenerates Fig. 4: 5000-run distributions of
// all 20 benchmarks on Machine 1 and the modality census (paper: 70%
// multimodal — 40/20/10% with 2/3/>3 modes).
func BenchmarkFig4Distributions(b *testing.B) {
	var multimodalPct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		total := len(r.Benchmarks)
		multimodalPct = 100 * float64(total-r.Split[1]) / float64(total)
	}
	b.ReportMetric(multimodalPct, "multimodal_%")
}

// BenchmarkFig5aScatter regenerates Fig. 5a: 330 NAMD-vs-KS day-pair
// comparisons across 11 CPU benchmarks and 3 machines.
func BenchmarkFig5aScatter(b *testing.B) {
	var dissimilar, divergent float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5a(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		dissimilar = 100 * float64(r.DissimilarKS) / float64(len(r.Pairs))
		divergent = float64(r.Divergent)
	}
	b.ReportMetric(dissimilar, "KS_dissimilar_%")
	b.ReportMetric(divergent, "NAMD_blind_pairs")
}

// BenchmarkFig5bHeatmap regenerates Fig. 5b: the hotspot/Machine 2
// day-similarity heatmaps (paper's day3-day5 cell: NAMD 0.00, KS 0.21).
func BenchmarkFig5bHeatmap(b *testing.B) {
	var namd35, ks35 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5b(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		namd35, ks35 = r.NAMD[2][4], r.KS[2][4]
	}
	b.ReportMetric(namd35, "NAMD_d3d5")
	b.ReportMetric(ks35, "KS_d3d5")
}

// BenchmarkFig5cModeFlip regenerates Fig. 5c: day-3 trimodal vs day-5
// bimodal hotspot distributions with equal means.
func BenchmarkFig5cModeFlip(b *testing.B) {
	var m3, m5 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5c(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		m3, m5 = float64(r.ModesDay3), float64(r.ModesDay5)
	}
	b.ReportMetric(m3, "modes_day3")
	b.ReportMetric(m5, "modes_day5")
}

// BenchmarkFig6StoppingRules regenerates Fig. 6: the four Table IV stopping
// rules on the GPU suite over the simulated FaaS platform.
func BenchmarkFig6StoppingRules(b *testing.B) {
	var ksSave, ciT1Save, ciT2Save float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		ksSave = 100 * r.Savings["ks-0.1"]
		ciT1Save = 100 * r.Savings["ci-0.05"]
		ciT2Save = 100 * r.Savings["ci-0.01"]
	}
	b.ReportMetric(ksSave, "ks_savings_%")
	b.ReportMetric(ciT1Save, "ciT1_savings_%")
	b.ReportMetric(ciT2Save, "ciT2_savings_%")
}

// BenchmarkFig7FineGrained regenerates Fig. 7: leukocyte phase breakdown
// (tracking introduces the two modes).
func BenchmarkFig7FineGrained(b *testing.B) {
	var trackingModes float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		trackingModes = float64(r.ModesTracking)
	}
	b.ReportMetric(trackingModes, "tracking_modes")
}

// BenchmarkFig8BFS regenerates Fig. 8: bfs-CUDA on A100 vs H100 (paper:
// ~2x speedup, more modes on the H100).
func BenchmarkFig8BFS(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Comparison.Speedup
	}
	b.ReportMetric(speedup, "H100_speedup_x")
}

// BenchmarkFig9SRAD regenerates Fig. 9: srad-CUDA on A100 vs H100 (paper:
// ~1.2x speedup).
func BenchmarkFig9SRAD(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Comparison.Speedup
	}
	b.ReportMetric(speedup, "H100_speedup_x")
}

// BenchmarkTable5Concurrency regenerates Table V: sc under concurrency
// 1..16 on Machine 3 (paper: 3.46 s -> 23.14 s total, 3.46 -> 1.45 s
// per unit).
func BenchmarkTable5Concurrency(b *testing.B) {
	var c16, perUnit16 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		c16, perUnit16 = last.AvgTime, last.PerUnit
	}
	b.ReportMetric(c16, "c16_avg_s")
	b.ReportMetric(perUnit16, "c16_perunit_s")
}

// BenchmarkTuningSynthetic regenerates the §IV-c tuning pass: detection and
// stopping on the ten synthetic distributions.
func BenchmarkTuningSynthetic(b *testing.B) {
	var correct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tuning(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		correct = float64(r.CorrectDetections)
	}
	b.ReportMetric(correct, "correct_of_10")
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationBandwidth compares KDE bandwidth policies (Silverman vs
// fixed fractions of it) by mode-count accuracy over the Rodinia suite's
// canonical distributions.
func BenchmarkAblationBandwidth(b *testing.B) {
	type policy struct {
		name  string
		scale float64 // multiple of Silverman
	}
	for _, p := range []policy{{"silverman", 1.0}, {"half", 0.5}, {"double", 2.0}} {
		b.Run(p.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				correct, total := modeAccuracy(p.scale)
				acc = 100 * float64(correct) / float64(total)
			}
			b.ReportMetric(acc, "mode_acc_%")
		})
	}
}

// modeAccuracy counts suite benchmarks whose designed mode count is
// recovered under a scaled-Silverman KDE bandwidth.
func modeAccuracy(scale float64) (correct, total int) {
	rng := randx.New(benchSeed)
	for _, tc := range []struct {
		modes int
		mus   []float64
	}{
		{1, []float64{10}},
		{2, []float64{10, 10.6}},
		{3, []float64{10, 10.55, 11.1}},
		{4, []float64{10, 10.5, 11, 11.5}},
	} {
		for trial := 0; trial < 5; trial++ {
			s := randx.NewMultimodalNormal(rng.Fork(), 0.06, tc.mus...)
			data := randx.SampleN(s, 2000)
			bw := stats.SilvermanBandwidth(data) * scale
			got := len(stats.NewKDEBandwidth(data, bw).Modes(256, 0.15, 0.25))
			if got == tc.modes {
				correct++
			}
			total++
		}
	}
	return correct, total
}

// BenchmarkAblationSplit compares the deterministic half-vs-half KS rule
// against the bootstrap random-split self-similarity rule: runs used and
// divergence to truth over the suite-like bimodal workloads.
func BenchmarkAblationSplit(b *testing.B) {
	mk := map[string]func() stopping.Rule{
		"half-split": func() stopping.Rule {
			return stopping.NewKS(0.1, stopping.Bounds{MaxSamples: 2000})
		},
		"random-split": func() stopping.Rule {
			return stopping.NewSelfSimilarity(0.1, 5, benchSeed, stopping.Bounds{MaxSamples: 2000})
		},
	}
	for name, makeRule := range mk {
		b.Run(name, func(b *testing.B) {
			var meanRuns, meanDiv float64
			for i := 0; i < b.N; i++ {
				meanRuns, meanDiv = 0, 0
				const workloads = 8
				for w := uint64(0); w < workloads; w++ {
					sampler := func() randx.Sampler {
						return randx.NewBimodalNormal(randx.New(w+1), 1.0, 0.008, 1.06, 0.008, 0.55)
					}
					got := stopping.Drive(sampler().Next, makeRule())
					truth := randx.SampleN(sampler(), 2000)
					meanRuns += float64(len(got)) / workloads
					meanDiv += similarity.KS(got, truth) / workloads
				}
			}
			b.ReportMetric(meanRuns, "mean_runs")
			b.ReportMetric(meanDiv, "mean_KS_to_truth")
		})
	}
}

// BenchmarkAblationMeta compares the meta-heuristic against an always-KS
// policy on the full synthetic tuning set: total runs spent.
func BenchmarkAblationMeta(b *testing.B) {
	mk := map[string]func() stopping.Rule{
		"meta": func() stopping.Rule {
			return stopping.NewMeta(stopping.MetaConfig{Seed: benchSeed}, stopping.Bounds{MaxSamples: 5000})
		},
		"always-ks": func() stopping.Rule {
			return stopping.NewKS(0.1, stopping.Bounds{MaxSamples: 5000})
		},
	}
	for name, makeRule := range mk {
		b.Run(name, func(b *testing.B) {
			var totalRuns float64
			for i := 0; i < b.N; i++ {
				totalRuns = 0
				for j := range randx.TuningSet(randx.New(benchSeed)) {
					s := randx.TuningSet(randx.New(benchSeed))[j]
					totalRuns += float64(len(stopping.Drive(s.Next, makeRule())))
				}
			}
			b.ReportMetric(totalRuns, "total_runs")
		})
	}
}

// BenchmarkAblationBinning compares histogram binning rules by how close
// the histogram peak count is to the designed mode count on bimodal data.
func BenchmarkAblationBinning(b *testing.B) {
	for _, rule := range []stats.BinRule{stats.BinSturges, stats.BinFreedmanDiaconis, stats.BinMinWidth, stats.BinScott} {
		b.Run(rule.String(), func(b *testing.B) {
			var hits float64
			for i := 0; i < b.N; i++ {
				hits = 0
				for trial := uint64(0); trial < 10; trial++ {
					s := randx.NewBimodalNormal(randx.New(trial+7), 10, 0.08, 10.6, 0.08, 0.55)
					h := stats.NewHistogram(randx.SampleN(s, 3000), rule)
					if h.Peaks(0.2) == 2 {
						hits++
					}
				}
			}
			b.ReportMetric(10*hits, "peak_acc_%")
		})
	}
}

// BenchmarkAblationClassifierSampleSize measures classifier accuracy on the
// synthetic tuning families as a function of sample size: how early can the
// meta-heuristic trust its family decision?
func BenchmarkAblationClassifierSampleSize(b *testing.B) {
	for _, n := range []int{100, 300, 1000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				correct, total := 0, 0
				for trial := 0; trial < 10; trial++ {
					trialSeed := uint64(benchSeed + trial*7919)
					for idx, s := range randx.TuningSet(randx.New(trialSeed)) {
						name := s.Name()
						data := randx.SampleN(randx.TuningSet(randx.New(trialSeed))[idx], n)
						got := classify.Classify(data).Class
						if classAcceptable(name, got) {
							correct++
						}
						total++
					}
				}
				acc = 100 * float64(correct) / float64(total)
			}
			b.ReportMetric(acc, "accuracy_%")
		})
	}
}

// classAcceptable mirrors the tuning experiment's accepted labels.
func classAcceptable(family string, got classify.Class) bool {
	accept := map[string][]classify.Class{
		"normal":     {classify.Normal},
		"lognormal":  {classify.LogNormal},
		"uniform":    {classify.Uniform},
		"loguniform": {classify.LogUniform},
		"logistic":   {classify.Logistic, classify.Normal},
		"bimodal":    {classify.Multimodal},
		"multimodal": {classify.Multimodal},
		"sinusoidal": {classify.Autocorrelated},
		"cauchy":     {classify.HeavyTailed},
		"constant":   {classify.Constant},
	}
	for _, ok := range accept[family] {
		if got == ok {
			return true
		}
	}
	return false
}

// BenchmarkLauncherOverhead measures the launcher's per-run orchestration
// cost over the (instant) simulated backend: bookkeeping, logging rows, and
// stopping-rule checks — the non-intrusiveness claim of §III-B in numbers.
func BenchmarkLauncherOverhead(b *testing.B) {
	m, err := machine.ByName("machine1")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := core.NewLauncher().Run(context.Background(), core.Experiment{
			Workload: "bfs",
			Backend:  backend.NewSim(m, uint64(i)),
			Rule:     stopping.NewFixed(1000),
			Seed:     uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Runs != 1000 {
			b.Fatal("short run")
		}
	}
	b.ReportMetric(1000, "runs/op")
}

// BenchmarkStoppingCheckIncrementalVsRecompute compares the two ways of
// evaluating the KS half-vs-half convergence check (the complexity table in
// DESIGN.md):
//
//   - check-*: one check at n=1000 in isolation. The incremental rule keeps
//     both prefix halves as sorted multisets, so a check is a single O(n)
//     merge walk; the pre-rewrite recompute policy re-sorts both halves
//     first, O(n log n) with two fresh copies.
//   - campaign-*: a full 1000-sample campaign with an unreachable threshold,
//     paying for all 100 checks at growing n (amortizing the incremental
//     path's per-sample sorted inserts against the repeated re-sorts).
func BenchmarkStoppingCheckIncrementalVsRecompute(b *testing.B) {
	const n = 1000
	data := randx.SampleN(randx.NewBimodalNormal(randx.New(benchSeed), 1.0, 0.01, 1.06, 0.01, 0.55), n)
	bounds := stopping.Bounds{MaxSamples: n}

	b.Run("check-incremental", func(b *testing.B) {
		var halves stream.Halves
		for _, x := range data {
			halves.Add(x)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var ks float64
		for i := 0; i < b.N; i++ {
			ks = halves.KS()
		}
		b.ReportMetric(ks, "KS")
	})

	b.Run("check-recompute", func(b *testing.B) {
		first, second := stats.SplitHalves(data)
		b.ReportAllocs()
		b.ResetTimer()
		var ks float64
		for i := 0; i < b.N; i++ {
			ks = stats.KSStatistic(first, second)
		}
		b.ReportMetric(ks, "KS")
	})

	b.Run("campaign-incremental", func(b *testing.B) {
		b.ReportAllocs()
		var checks int
		for i := 0; i < b.N; i++ {
			rule := stopping.NewKS(1e-9, bounds)
			checks = 0
			for _, x := range data {
				rule.Add(x)
				if rule.N() >= 10 && rule.N()%10 == 0 {
					checks++
				}
			}
			if !rule.Done() {
				b.Fatal("rule did not reach the sample cap")
			}
		}
		b.ReportMetric(float64(checks), "checks/op")
	})

	b.Run("campaign-recompute", func(b *testing.B) {
		b.ReportAllocs()
		var checks int
		for i := 0; i < b.N; i++ {
			samples := make([]float64, 0, n)
			checks = 0
			done := false
			for _, x := range data {
				if done {
					break
				}
				samples = append(samples, x)
				if len(samples) < 10 || len(samples)%10 != 0 {
					continue
				}
				checks++
				first, second := stats.SplitHalves(samples)
				if stats.KSStatistic(first, second) < 1e-9 {
					done = true
				}
			}
			if done {
				b.Fatal("recompute variant stopped early")
			}
		}
		b.ReportMetric(float64(checks), "checks/op")
	})
}

// benchFig4Parallel regenerates Fig. 4 with the experiments worker pool
// capped at the given width; on multi-core hosts the per-benchmark fan-out
// (sampling 5 machine-days plus the KDE mode census) scales near-linearly
// while the rendered report stays byte-identical.
func benchFig4Parallel(b *testing.B, workers int) {
	prev := experiments.SetParallelism(workers)
	defer experiments.SetParallelism(prev)
	var multimodalPct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		total := len(r.Benchmarks)
		multimodalPct = 100 * float64(total-r.Split[1]) / float64(total)
	}
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(multimodalPct, "multimodal_%")
}

func BenchmarkFig4Parallel1(b *testing.B) { benchFig4Parallel(b, 1) }
func BenchmarkFig4Parallel4(b *testing.B) { benchFig4Parallel(b, 4) }
func BenchmarkFig4Parallel8(b *testing.B) { benchFig4Parallel(b, 8) }

// BenchmarkBudgetedSweep regenerates the adaptive-budget acceptance result:
// an 8-cell factorial sweep under a tight CI rule and a fixed run budget of
// 320, executed once with UCB allocation and once with uniform round-robin.
// alloc_runs is the deterministic total the scheduler spends (exact-gated:
// same seed + budget must yield the same ledger forever) and ci_gain_x is
// the round-robin mean CI width over the UCB one — the adaptive policy's
// advantage, gated as a floor at 1.0 (UCB must never be worse than uniform).
func BenchmarkBudgetedSweep(b *testing.B) {
	base := sweep.Design{
		Name:      "bench-budget",
		Workloads: []string{"bfs", "srad"},
		Machines:  []string{"machine1", "machine3"},
		Days:      []int{1, 2},
		RuleName:  "ci",
		Threshold: 0.002, // tight: no cell converges inside the budget
		MaxRuns:   1000,
		Seed:      5,
		Budget:    320,
	}
	var spent int
	var gain float64
	for i := 0; i < b.N; i++ {
		run := func(policy string) *sweep.Outcome {
			d := base
			d.BudgetPolicy = policy
			out, err := sweep.RunBudgeted(context.Background(), d)
			if err != nil {
				b.Fatal(err)
			}
			return out
		}
		ucb := run("ucb")
		rr := run("rr")
		spent = ucb.Budget.Spent + rr.Budget.Spent
		gain = rr.MeanCIWidth(0.95) / ucb.MeanCIWidth(0.95)
	}
	b.ReportMetric(float64(spent), "alloc_runs")
	b.ReportMetric(gain, "ci_gain_x")
}
